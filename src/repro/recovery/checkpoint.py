"""Deterministic checkpoint/restore for a whole simulated machine.

The simulation cannot be pickled mid-run — guest thread behaviours are
live generators — so checkpoints are *replay-based*: a snapshot is a
canonical, JSON-able ``state_dict`` of everything that determines future
execution (engine queue, RNG stream positions, scheduler runqueues,
domain/vCPU/guest/channel state, xenstore tree, fault-injector position)
plus a SHA-256 fingerprint of that state.  ``restore`` rebuilds the
scenario from its deterministic factory, replays the simulator to the
checkpoint instant, and verifies the replayed state fingerprints
identically — at which point continuing the run is bit-identical to
never having stopped (the simulator is deterministic, and determinism
plus equal state implies equal futures).

Compatibility note: the state format is keyed by stable names (domain
names, ``domain/index`` vCPU labels, thread names, callback qualnames),
never by object identity or the process-global thread-id counter, so
fingerprints compare across independently built machines in the same or
different processes.  Fingerprints are additionally *engine-invariant*:
they hash a canonical view that drops guest tick events (macro mode
represents elided tick chains as kernel bookkeeping rather than queue
entries) and replaces absolute event sequence numbers with within-time
ranks (the causal scheduling order, which all engines share).  The raw
engine queue stays in the state dict for same-engine diagnostics.  The
format is versioned (``FORMAT_VERSION``); bumping it invalidates stored
checkpoints, never silently misreads them.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.hypervisor.machine import Machine

FORMAT_VERSION = 2  # v2: engine-invariant fingerprints (canonical_view)


class RestoreMismatch(RuntimeError):
    """Replayed state does not match the checkpoint it claims to restore."""


def _vcpu_state(vcpu) -> dict:
    return {
        "state": vcpu.state.value,
        "priority": int(vcpu.priority),
        "credits": vcpu.credits,
        "pcpu": vcpu.pcpu.index if vcpu.pcpu is not None else None,
        "last_pcpu": vcpu.last_pcpu.index if vcpu.last_pcpu is not None else None,
        "boosted": vcpu.boosted,
        "freeze_pending": vcpu.freeze_pending,
        "run_started_at": vcpu.run_started_at,
        "pending_irqs": [irq.irq_class.value for irq in vcpu.pending_irqs],
        "irq_delivered": vcpu.irq_delivered.value,
        "ipi_received": vcpu.ipi_received.value,
    }


def _guest_state(guest) -> dict | None:
    """Guest-kernel state, via getattr guards: non-kernel guests (plain
    test doubles) contribute whatever subset of the surface they have."""
    if guest is None:
        return None
    state: dict = {}
    online = getattr(guest, "online_vcpus", None)
    if callable(online):
        state["online_vcpus"] = online()
    mask = getattr(guest, "cpu_freeze_mask", None)
    if mask is not None:
        state["freeze_mask"] = sorted(mask)
    threads = getattr(guest, "threads", None)
    if threads is not None:
        # Keyed by name, not tid: tids come from a process-global counter
        # and differ between a straight run and a rebuilt twin.
        state["threads"] = [
            {
                "name": t.name,
                "state": t.state.value,
                "vcpu": t.vcpu_index,
                "vruntime": t.vruntime,
                "exec_ns": t.exec_ns,
                "migrations": t.migrations,
            }
            for t in threads
        ]
    return state


def _domain_state(domain) -> dict:
    return {
        "weight": domain.weight,
        "cap": domain.cap,
        "window_consumed_ns": domain.window_consumed_ns,
        "total_consumed_ns": domain.total_consumed_ns,
        "extendability_ns": domain.extendability_ns,
        "optimal_vcpus": domain.optimal_vcpus,
        "extendability_published_ns": domain.extendability_published_ns,
        "vcpus": [_vcpu_state(v) for v in domain.vcpus],
        "guest": _guest_state(domain.guest),
    }


def _faults_state(injector) -> dict | None:
    if injector is None:
        return None
    return {
        "stats": injector.stats.to_dict(),
        "recovery": injector.recovery.to_dict(),
        "scripted_consumed": sorted(injector._scripted.consumed),
        "outage_onsets": sorted(injector._outage_onsets_seen),
        "balancer_down_until": injector._balancer_down_until,
        "rng": injector._seeds.state_dict(),
    }


def state_dict(machine: "Machine") -> dict:
    """The canonical JSON-able snapshot of one machine's full state.

    Read-only: nothing in here may pop queue entries, flush timers, or
    draw randomness — taking a snapshot must leave the run bit-identical
    to never snapshotting (the purity test pins this).
    """
    sim = machine.sim
    return {
        "version": FORMAT_VERSION,
        "at_ns": sim.now,
        "engine": {
            "name": sim.engine,
            "seq": sim._seq,
            "events": sim.snapshot_events(),
        },
        "rng": machine.seeds.state_dict(),
        "scheduler": machine.scheduler.state_dict(),
        "pool": [
            {
                "index": pcpu.index,
                "current": pcpu.current.name if pcpu.current else None,
                "idle_ns": pcpu.idle_ns,
                "idle_since": pcpu._idle_since,
            }
            for pcpu in machine.pool
        ],
        "domains": {d.name: _domain_state(d) for d in machine.domains},
        "faults": _faults_state(machine.faults),
        "xenstore": {
            "tree": dict(sorted(machine.xenstore._tree.items())),
            "writes": machine.xenstore.writes,
            "watch_fires": machine.xenstore.watch_fires,
        },
    }


#: Callbacks whose queue entries are an engine-representation detail: the
#: macro engine elides provably-quiescent guest ticks (their chain state
#: lives in GuestKernel bookkeeping instead), so their presence, timing
#: grid and sequence numbers legitimately differ between engines while
#: the simulated machine is in the same logical state.
_ENGINE_PRIVATE_CALLBACKS = frozenset({
    "repro.guest.kernel.GuestKernel._tick",
})


def canonical_view(state: dict) -> dict:
    """The engine-invariant projection of a state dict that fingerprints
    hash.  Guest tick events are dropped and each remaining event's
    global sequence number becomes its rank among same-time events —
    identical across wheel/heap/macro captures of the same instant."""
    engine = state.get("engine") or {}
    by_time: dict[int, list] = {}
    for time, seq, callback in engine.get("events") or []:
        if callback in _ENGINE_PRIVATE_CALLBACKS:
            continue
        by_time.setdefault(time, []).append((seq, callback))
    rows = []
    for time in sorted(by_time):
        for rank, (_seq, callback) in enumerate(sorted(by_time[time])):
            rows.append([time, rank, callback])
    out = dict(state)
    out["engine"] = {"events": rows}
    return out


def fingerprint(state: dict) -> str:
    """SHA-256 over the canonical (engine-invariant) serialization."""
    canonical = json.dumps(canonical_view(state), sort_keys=True,
                           separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class Checkpoint:
    """One captured instant: the state, its time, and its fingerprint."""

    at_ns: int
    state: dict
    fingerprint: str

    def dumps(self) -> str:
        return json.dumps(
            {"at_ns": self.at_ns, "fingerprint": self.fingerprint, "state": self.state},
            sort_keys=True,
            indent=2,
        )


def capture(machine: "Machine") -> Checkpoint:
    state = state_dict(machine)
    return Checkpoint(at_ns=machine.sim.now, state=state, fingerprint=fingerprint(state))


def _diff_keys(expected: dict, actual: dict) -> list[str]:
    differing = []
    for key in expected:
        if expected.get(key) != actual.get(key):
            differing.append(key)
    return differing


def restore(checkpoint: Checkpoint, build: Callable[[], object]):
    """Rebuild via ``build()``, replay to the checkpoint instant, verify.

    ``build`` must be the deterministic factory that produced the
    original run (same config, seed, workload); it may return either a
    ``Machine`` or any object with a ``machine`` attribute (a Scenario).
    Returns the built object after verification; raises
    :class:`RestoreMismatch` naming the differing top-level state keys
    when the replayed state does not match.
    """
    built = build()
    machine = getattr(built, "machine", built)
    if not machine.started:
        machine.start()
    machine.sim.run(until=checkpoint.at_ns)
    replayed = state_dict(machine)
    if fingerprint(replayed) != checkpoint.fingerprint:
        differing = _diff_keys(checkpoint.state, replayed)
        raise RestoreMismatch(
            f"replay to t={checkpoint.at_ns} diverged from checkpoint "
            f"in state keys: {', '.join(differing) or '<fingerprint only>'}"
        )
    return built
