"""repro — a reproduction of vScale (EuroSys 2016).

vScale lets an SMP virtual machine scale its number of active vCPUs, in
microseconds, to match the physical CPU share it can actually obtain.  This
package reimplements the whole stack as a deterministic discrete-event
simulation: a Xen-style credit scheduler (:mod:`repro.hypervisor`), a
Linux-like guest kernel (:mod:`repro.guest`), vScale itself
(:mod:`repro.core`), the paper's workloads (:mod:`repro.workloads`) and an
experiment harness regenerating every table and figure
(:mod:`repro.experiments`).

Quick start::

    from repro.experiments.setups import ScenarioBuilder

    scenario = ScenarioBuilder(seed=7).with_worker_vm(vcpus=4).with_background_vms(2)
    # ... see examples/quickstart.py for a complete run.
"""

from repro.units import MS, SEC, US, msec, sec, usec

__version__ = "1.0.0"

__all__ = ["US", "MS", "SEC", "usec", "msec", "sec", "__version__"]
