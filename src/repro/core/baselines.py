"""Baseline vCPU-scaling managers the paper compares against.

* :class:`FixedVCPUPolicy` — vanilla Xen/Linux: all provisioned vCPUs stay
  online forever (the no-op manager; useful for symmetric harness code).
* :class:`VCPUBalManager` — VCPU-Bal (Song et al., APSys'13): the same idea
  as vScale but (a) the target count considers only VM *weights*, not
  consumption (not work-conserving), (b) monitoring is centralized in dom0
  via libxl (hundreds of microseconds to milliseconds per poll, growing
  with the number of VMs), and (c) reconfiguration uses Linux CPU hotplug
  (milliseconds to 100+ ms).
* :class:`HotplugScaler` — an ablation hybrid: vScale's extendability
  policy, but Linux hotplug as the mechanism.  Isolates how much of
  vScale's win comes from the mechanism's speed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.faults.errors import ChannelReadError
from repro.guest.actions import BlockOn, Compute, SpinFlag
from repro.guest.hotplug import HotplugMechanism, HotplugModel
from repro.units import MS

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.guest.kernel import GuestKernel
    from repro.hypervisor.dom0 import Dom0Toolstack
    from repro.hypervisor.machine import Machine


class FixedVCPUPolicy:
    """Keep every provisioned vCPU online (vanilla behaviour)."""

    def __init__(self, kernel: "GuestKernel"):
        self.kernel = kernel

    def install(self) -> None:
        """Nothing to do — present for harness symmetry."""


@dataclass
class VCPUBalConfig:
    #: dom0's polling period.  VCPU-Bal polls coarsely because each poll
    #: walks every domain through libxl.
    period_ns: int = 100 * MS
    min_vcpus: int = 1


class VCPUBalManager:
    """Centralized weight-only scaling through dom0 + CPU hotplug.

    The manager "runs in dom0": its polling latency is charged against the
    dom0 toolstack model, and its decisions reach the guest via the real
    XenStore/XenBus path — an availability-key write, the guest driver's
    watch upcall, and finally the hotplug operation.
    """

    def __init__(
        self,
        kernel: "GuestKernel",
        dom0: "Dom0Toolstack",
        hotplug_model: HotplugModel,
        config: VCPUBalConfig | None = None,
    ):
        from repro.guest.hotplug import XenBusCpuDriver

        self.kernel = kernel
        self.dom0 = dom0
        self.config = config or VCPUBalConfig()
        self.mechanism = HotplugMechanism(kernel, hotplug_model)
        #: The machine-wide store: decisions ride the same XenStore/XenBus
        #: bus every other component (and the recovery checkpoints) sees.
        self.store = kernel.machine.xenstore
        self.driver = XenBusCpuDriver(kernel, self.store, self.mechanism)
        self.reconfigurations = 0
        self._installed = False
        #: True while a dom0 balancer outage has this manager degraded to
        #: naive per-domain decisions.
        self._degraded = False
        self.trace: list[tuple[int, int]] = []

    def install(self) -> None:
        if self._installed:
            raise RuntimeError("manager already installed")
        self._installed = True
        self.kernel.sim.schedule(self.config.period_ns, self._poll)

    def _poll(self) -> None:
        machine = self.kernel.machine
        faults = machine.faults
        now = self.kernel.sim.now
        if faults is not None and faults.balancer_outage(now, self.config.period_ns):
            # Crash-stop outage of the centralized dom0 balancer: the
            # global sweep is unreachable, so degrade to a naive local
            # decision and keep polling for the service to come back.
            if not self._degraded:
                self._degraded = True
                machine.tracer.emit(
                    now, "fault", "balancer_outage", self.kernel.domain.name
                )
            self._naive_decide()
            self.kernel.sim.schedule(self.config.period_ns, self._poll)
            return
        if self._degraded:
            # Explicit re-sync: the first healthy poll after an outage
            # runs the full centralized sweep from fresh dom0 data.
            self._degraded = False
            if faults is not None:
                faults.recovery.balancer_resyncs += 1
            machine.tracer.emit(
                now, "vscale", "balancer_resync", self.kernel.domain.name
            )
        # Centralized monitoring: dom0 reads every VM's consumption.  The
        # sampled latency delays the decision (and grows with #VMs).
        latency = self.dom0.sample_read_all_ns(len(machine.domains))
        self.kernel.sim.schedule(latency, self._decide)

    def _naive_decide(self) -> None:
        """Degraded fallback while dom0 is down: without pool-wide data
        the safe per-domain move is availability — bring the lowest frozen
        vCPU back online; never freeze blind."""
        from repro.hypervisor.xenstore import availability_path

        faults = self.kernel.machine.faults
        if faults is not None:
            faults.recovery.naive_fallback_decisions += 1
        frozen = sorted(self.kernel.cpu_freeze_mask)
        if frozen and not self.mechanism.busy:
            self.store.write(
                availability_path(self.kernel.domain.name, frozen[0]), "online"
            )
            self.reconfigurations += 1
            self.trace.append((self.kernel.sim.now, self.kernel.online_vcpus))

    def _decide(self) -> None:
        from repro.hypervisor.xenstore import availability_path

        machine = self.kernel.machine
        target = self._weight_only_target(machine)
        online = self.kernel.online_vcpus
        if target != online and not self.mechanism.busy:
            name = self.kernel.domain.name
            if target < online:
                candidates = [
                    i
                    for i in range(len(self.kernel.runqueues))
                    if i not in self.kernel.cpu_freeze_mask and i != 0
                ]
                if candidates:
                    self.store.write(
                        availability_path(name, max(candidates)), "offline"
                    )
                    self.reconfigurations += 1
            else:
                frozen = sorted(self.kernel.cpu_freeze_mask)
                if frozen:
                    self.store.write(availability_path(name, frozen[0]), "online")
                    self.reconfigurations += 1
            self.trace.append((self.kernel.sim.now, self.kernel.online_vcpus))
        self.kernel.sim.schedule(self.config.period_ns, self._poll)

    def _weight_only_target(self, machine: "Machine") -> int:
        """VCPU-Bal's target: the VM's weight share of the pool, ignoring
        what co-located VMs actually consume."""
        domain = self.kernel.domain
        total_weight = sum(d.weight for d in machine.domains)
        share = domain.weight / total_weight * machine.config.pcpus
        import math

        target = max(self.config.min_vcpus, math.ceil(share - 1e-9))
        return min(target, len(domain.vcpus))


class HotplugScaler:
    """vScale's policy with Linux hotplug as the mechanism (ablation).

    Runs as an in-guest daemon thread like vScale's, but each
    reconfiguration pays the sampled hotplug latency and the stop_machine
    stall.
    """

    def __init__(
        self,
        kernel: "GuestKernel",
        hotplug_model: HotplugModel,
        period_ns: int = 10 * MS,
        min_vcpus: int = 1,
    ):
        from repro.core.channel import VScaleChannel

        self.kernel = kernel
        self.channel = VScaleChannel(kernel.domain)
        self.mechanism = HotplugMechanism(kernel, hotplug_model)
        self.period_ns = period_ns
        self.min_vcpus = min_vcpus
        self.reconfigurations = 0
        self.read_failures = 0
        self.thread = None

    def install(self):
        if self.thread is not None:
            raise RuntimeError("scaler already installed")
        self.thread = self.kernel.spawn(
            self._behavior(), name="hotplug-scaled", rt=True, pinned_to=0
        )
        return self.thread

    def _behavior(self):
        kernel = self.kernel
        while True:
            timer = SpinFlag("hotplugd.timer")
            kernel.start_timer(self.period_ns, timer)
            yield BlockOn(timer)
            if self.mechanism.busy:
                continue
            try:
                _ext, n_opt, cost = self.channel.read()
            except ChannelReadError as exc:
                # Naive handling (no retry): skip the period entirely.
                self.read_failures += 1
                yield Compute(exc.cost_ns)
                continue
            yield Compute(cost)
            total = len(kernel.runqueues)
            target = max(self.min_vcpus, min(n_opt, total))
            online = kernel.online_vcpus
            if target < online:
                candidates = [
                    i
                    for i in range(total)
                    if i not in kernel.cpu_freeze_mask and i != 0
                ]
                if candidates:
                    self.mechanism.remove_vcpu(max(candidates))
                    self.reconfigurations += 1
            elif target > online and kernel.cpu_freeze_mask:
                self.mechanism.add_vcpu(min(kernel.cpu_freeze_mask))
                self.reconfigurations += 1
