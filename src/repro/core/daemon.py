"""The vScale user-space daemon.

The daemon is a real-time-class thread pinned to vCPU0.  Every period it
reads the VM's CPU extendability through the vScale channel and, when the
optimal vCPU count differs from the current online count, drives the
balancer to freeze or unfreeze vCPUs — highest index frozen first, lowest
unfrozen first, so vCPU0 (the master) is always online.

The daemon is an *optional service*: applications that pin threads or
assume a fixed processor count can disable it (``enabled=False`` or
:meth:`VScaleDaemon.disable`), matching the paper's flexibility principle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.balancer import VScaleBalancer
from repro.core.channel import VScaleChannel
from repro.guest.actions import BlockOn, Compute, SpinFlag
from repro.units import MS

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.guest.kernel import GuestKernel
    from repro.guest.threads import Thread


@dataclass
class DaemonConfig:
    """Daemon policy knobs."""

    #: Polling period.  The hypervisor recomputes every 10 ms; polling at
    #: the same rate keeps reaction latency within one recalculation.
    period_ns: int = 10 * MS
    #: Consecutive observations of a *smaller* optimum required before
    #: freezing (hysteresis against transient dips).  Growth is immediate:
    #: unfreezing early only costs a little fragmentation, while freezing
    #: late wastes the whole benefit.
    shrink_patience: int = 2
    #: Never scale below this many online vCPUs.
    min_vcpus: int = 1
    #: Optional hard limit on reconfigurations per wakeup.
    max_steps_per_wakeup: int = 8
    #: How to round the extendability (in pCPUs) into a vCPU target.
    #: Algorithm 1 ceils, granting one extra vCPU for a partial allocation.
    #: For busy-waiting workloads that extra vCPU dilutes every sibling
    #: (the guest spreads load evenly, so 3.2 pCPUs over 4 vCPUs = 0.8
    #: each — and spinning turns the missing 20% into team-wide stalls).
    #: The default policy therefore only takes the extra vCPU once the
    #: partial allocation is worth most of a pCPU.  The ceil/floor choice
    #: is ablated in benchmarks/test_ablations.py.
    round_mode: str = "conservative"  # "ceil" | "floor" | "conservative"
    #: Fraction of a pCPU the partial allocation must reach before the
    #: conservative policy adds the extra vCPU.
    partial_threshold: float = 0.8


class VScaleDaemon:
    """Monitors extendability and reconfigures vCPUs through the balancer."""

    def __init__(
        self,
        kernel: "GuestKernel",
        config: DaemonConfig | None = None,
        channel: VScaleChannel | None = None,
        balancer: VScaleBalancer | None = None,
    ):
        self.kernel = kernel
        self.config = config or DaemonConfig()
        self.channel = channel or VScaleChannel(kernel.domain)
        self.balancer = balancer or VScaleBalancer(kernel)
        self.enabled = True
        self._shrink_votes = 0
        self.decisions = 0
        self.reconfigurations = 0
        #: (time_ns, online_vcpus) trace for Figure 8.
        self.trace: list[tuple[int, int]] = []
        self.thread: "Thread | None" = None

    # ------------------------------------------------------------------
    def install(self) -> "Thread":
        """Spawn the daemon thread (RT class, pinned to vCPU0)."""
        if self.thread is not None:
            raise RuntimeError("daemon already installed")
        self.thread = self.kernel.spawn(
            self._behavior(), name="vscaled", rt=True, pinned_to=0
        )
        return self.thread

    def disable(self) -> None:
        self.enabled = False

    def enable(self) -> None:
        self.enabled = True

    # ------------------------------------------------------------------
    def _behavior(self):
        """The daemon loop as a thread behaviour."""
        kernel = self.kernel
        while True:
            timer = SpinFlag("vscaled.timer")
            kernel.start_timer(self.config.period_ns, timer)
            yield BlockOn(timer)
            if not self.enabled:
                continue
            extendability_ns, n_opt, read_cost = self.channel.read()
            yield Compute(read_cost)
            target = self._round_target(extendability_ns, n_opt)
            steps = self._decide(target)
            for index, freeze in steps:
                if freeze:
                    self.balancer.freeze(index)
                else:
                    self.balancer.unfreeze(index)
                self.reconfigurations += 1
                # The master-side cost was charged to rq0 by the balancer;
                # yield a zero-compute so it is consumed before continuing.
                yield Compute(0)
            if steps:
                self.trace.append((kernel.sim.now, kernel.online_vcpus))
                kernel.machine.tracer.emit(
                    kernel.sim.now, "vscale", "decision", kernel.domain.name,
                    online=kernel.online_vcpus, extendability_ns=extendability_ns,
                )

    def _round_target(self, extendability_ns: int, n_opt: int) -> int:
        """Turn extendability into a vCPU target per the rounding policy.

        ``n_opt`` is the hypervisor's ceil-rounded suggestion (Algorithm 1
        line 11/18); the daemon may round more conservatively — see
        :attr:`DaemonConfig.round_mode`.
        """
        mode = self.config.round_mode
        if mode == "ceil":
            return n_opt
        pcpus = extendability_ns / self.channel.domain.machine.config.vscale_period_ns
        import math

        if mode == "floor":
            return max(1, math.floor(pcpus + 1e-9))
        if mode == "conservative":
            base = math.floor(pcpus + 1e-9)
            fraction = pcpus - base
            if fraction >= self.config.partial_threshold:
                base += 1
            return max(1, base)
        raise ValueError(f"unknown round_mode {mode!r}")

    def _decide(self, n_opt: int) -> list[tuple[int, bool]]:
        """Map the optimal count to concrete freeze/unfreeze steps."""
        self.decisions += 1
        kernel = self.kernel
        total = len(kernel.runqueues)
        target = max(self.config.min_vcpus, min(n_opt, total))
        online = kernel.online_vcpus
        if target < online:
            self._shrink_votes += 1
            if self._shrink_votes < self.config.shrink_patience:
                return []
        else:
            self._shrink_votes = 0
        if target == online:
            return []
        steps: list[tuple[int, bool]] = []
        if target > online:
            frozen = sorted(kernel.cpu_freeze_mask)
            for index in frozen[: target - online]:
                steps.append((index, False))
        else:
            online_set = [
                i for i in range(total) if i not in kernel.cpu_freeze_mask and i != 0
            ]
            for index in sorted(online_set, reverse=True)[: online - target]:
                steps.append((index, True))
        return steps[: self.config.max_steps_per_wakeup]

    # ------------------------------------------------------------------
    def vcpu_trace(self) -> list[tuple[int, int]]:
        """The (time, online vCPUs) trace, for Figure 8."""
        return list(self.trace)
