"""The vScale user-space daemon.

The daemon is a real-time-class thread pinned to vCPU0.  Every period it
reads the VM's CPU extendability through the vScale channel and, when the
optimal vCPU count differs from the current online count, drives the
balancer to freeze or unfreeze vCPUs — highest index frozen first, lowest
unfrozen first, so vCPU0 (the master) is always online.

The daemon is an *optional service*: applications that pin threads or
assume a fixed processor count can disable it (``enabled=False`` or
:meth:`VScaleDaemon.disable`), matching the paper's flexibility principle.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import TYPE_CHECKING

from repro.core.balancer import VScaleBalancer
from repro.core.channel import VScaleChannel
from repro.faults.errors import ChannelReadError, FreezeFailure
from repro.guest.actions import BlockOn, Compute, SpinFlag
from repro.units import MS, US

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.guest.kernel import GuestKernel
    from repro.guest.threads import Thread


@dataclass
class DaemonConfig:
    """Daemon policy knobs."""

    #: Polling period.  The hypervisor recomputes every 10 ms; polling at
    #: the same rate keeps reaction latency within one recalculation.
    period_ns: int = 10 * MS
    #: Consecutive observations of a *smaller* optimum required before
    #: freezing (hysteresis against transient dips).  Growth is immediate:
    #: unfreezing early only costs a little fragmentation, while freezing
    #: late wastes the whole benefit.
    shrink_patience: int = 2
    #: Never scale below this many online vCPUs.
    min_vcpus: int = 1
    #: Optional hard limit on reconfigurations per wakeup.
    max_steps_per_wakeup: int = 8
    #: How to round the extendability (in pCPUs) into a vCPU target.
    #: Algorithm 1 ceils, granting one extra vCPU for a partial allocation.
    #: For busy-waiting workloads that extra vCPU dilutes every sibling
    #: (the guest spreads load evenly, so 3.2 pCPUs over 4 vCPUs = 0.8
    #: each — and spinning turns the missing 20% into team-wide stalls).
    #: The default policy therefore only takes the extra vCPU once the
    #: partial allocation is worth most of a pCPU.  The ceil/floor choice
    #: is ablated in benchmarks/test_ablations.py.
    round_mode: str = "conservative"  # "ceil" | "floor" | "conservative"
    #: Fraction of a pCPU the partial allocation must reach before the
    #: conservative policy adds the extra vCPU.
    partial_threshold: float = 0.8

    # -- graceful-degradation knobs (all off by default: the happy-path
    #    daemon behaves exactly as before; fault experiments enable them
    #    via :meth:`hardened`). ------------------------------------------
    #: Extra attempts after a failed channel read before giving up on the
    #: period (the read itself is attempt 0).
    max_read_retries: int = 2
    #: Base backoff spent between read retries; doubles per attempt.
    retry_backoff_ns: int = 50 * US
    #: Ignore readings whose publish timestamp is older than this and hold
    #: the last-known-good vCPU count instead.  0 disables the guard.
    staleness_limit_ns: int = 0
    #: Minimum time between direction reversals (grow→shrink or back).
    #: A reversal arriving sooner is suppressed.  0 disables hysteresis.
    dwell_ns: int = 0
    #: Declare a missed period when the daemon wakes more than this many
    #: periods late, and resynchronize the timer.  0 disables the watchdog.
    watchdog_slack_periods: float = 0.0
    #: Publish the hysteresis state (dwell direction, shrink votes) to a
    #: single xenstore key after every decision, and restore it on restart
    #: after a crash.  Off by default: the happy-path daemon never touches
    #: xenstore for its own state.
    durable_state: bool = False

    @classmethod
    def hardened(cls, **overrides) -> "DaemonConfig":
        """The degradation-enabled profile used by the fault experiments:
        staleness guard at 5 periods, half-period dwell, watchdog at 1.5
        periods of slack."""
        base = cls(**overrides)
        params = asdict(base)
        if base.staleness_limit_ns == 0:
            params["staleness_limit_ns"] = 5 * base.period_ns
        if base.dwell_ns == 0:
            params["dwell_ns"] = base.period_ns // 2
        if base.watchdog_slack_periods == 0.0:
            params["watchdog_slack_periods"] = 1.5
        return cls(**params)

    @classmethod
    def crash_hardened(cls, **overrides) -> "DaemonConfig":
        """The crash-recovery profile used by the chaos experiments:
        :meth:`hardened` plus durable xenstore state, so a restarted
        daemon resumes its dwell hysteresis instead of relearning it."""
        base = cls.hardened(**overrides)
        params = asdict(base)
        params["durable_state"] = True
        return cls(**params)


@dataclass
class DaemonStats:
    """Control-loop health counters for the fault/stability reports."""

    #: Channel reads that raised (before any retry accounting).
    read_failures: int = 0
    #: Retries actually performed after a failure.
    read_retries: int = 0
    #: Periods abandoned because every retry failed.
    read_abandons: int = 0
    #: Readings served stale by fault injection (observed, may still act).
    stale_reads: int = 0
    #: Periods where the staleness guard held the last-known-good count.
    stale_holds: int = 0
    #: Freeze/unfreeze syscalls that failed transiently.
    reconfig_failures: int = 0
    #: Direction reversals that happened (flap pressure indicator).
    direction_flaps: int = 0
    #: Reversals suppressed by the dwell-time hysteresis.
    flaps_suppressed: int = 0
    #: Whole periods the daemon detected it slept through.
    missed_periods: int = 0
    #: Watchdog firings (each one resynchronizes the timer).
    watchdog_resyncs: int = 0

    def to_dict(self) -> dict:
        return asdict(self)


class VScaleDaemon:
    """Monitors extendability and reconfigures vCPUs through the balancer."""

    def __init__(
        self,
        kernel: "GuestKernel",
        config: DaemonConfig | None = None,
        channel: VScaleChannel | None = None,
        balancer: VScaleBalancer | None = None,
    ):
        self.kernel = kernel
        self.config = config or DaemonConfig()
        self.channel = channel or VScaleChannel(kernel.domain)
        self.balancer = balancer or VScaleBalancer(kernel)
        self.enabled = True
        self._shrink_votes = 0
        self.decisions = 0
        self.reconfigurations = 0
        self.stats = DaemonStats()
        #: Hysteresis state: direction of the last applied change (+1 grow,
        #: -1 shrink) and when it was applied.
        self._last_direction = 0
        self._last_change_ns = 0
        #: Set at restart after a crash; cleared (and folded into the
        #: recovery-epoch counters) by the first period that completes a
        #: fresh channel read — the reconvergence bound.
        self._recovering_since: int | None = None
        #: Last durable-state payload written, for write-on-change gating.
        self._published: str | None = None
        #: (time_ns, online_vcpus) trace for Figure 8.
        self.trace: list[tuple[int, int]] = []
        self.thread: "Thread | None" = None

    # ------------------------------------------------------------------
    def install(self) -> "Thread":
        """Spawn the daemon thread (RT class, pinned to vCPU0)."""
        if self.thread is not None:
            raise RuntimeError("daemon already installed")
        self.thread = self.kernel.spawn(
            self._behavior(), name="vscaled", rt=True, pinned_to=0
        )
        return self.thread

    def disable(self) -> None:
        self.enabled = False

    def enable(self) -> None:
        self.enabled = True

    # ------------------------------------------------------------------
    def _behavior(self):
        """The daemon loop as a thread behaviour.

        The loop survives every injected fault: failed reads are retried
        with exponential backoff and the period is abandoned (holding the
        current vCPU count) when the retries run out; expired readings are
        ignored by the staleness guard; failed freeze/unfreeze syscalls
        abort the rest of the plan for the period; a watchdog detects
        slept-through periods and resets the shrink-vote chain whose
        observations are no longer consecutive.

        Crash-stop faults are modeled in-loop: a ``daemon_crash`` decision
        from the injector wipes all volatile control state, parks the
        thread for the restart delay, then runs the :meth:`_recover`
        protocol before the next period.
        """
        kernel = self.kernel
        cfg = self.config
        while True:
            armed_at = kernel.sim.now
            delay = cfg.period_ns
            faults = kernel.machine.faults
            if faults is not None:
                delay += faults.daemon_delay_ns(armed_at, cfg.period_ns)
            timer = SpinFlag("vscaled.timer")
            kernel.start_timer(delay, timer)
            yield BlockOn(timer)
            if not self.enabled:
                continue
            if faults is not None:
                restart_ns = faults.daemon_crash(kernel.sim.now, cfg.period_ns)
                if restart_ns is not None:
                    # Crash-stop: every piece of in-memory control state is
                    # lost; the daemon is down until its restart fires.
                    self._shrink_votes = 0
                    self._last_direction = 0
                    self._last_change_ns = 0
                    self._published = None
                    kernel.machine.tracer.emit(
                        kernel.sim.now, "fault", "daemon_crash",
                        kernel.domain.name, down_ns=restart_ns,
                    )
                    restart = SpinFlag("vscaled.restart")
                    kernel.start_timer(restart_ns, restart)
                    yield BlockOn(restart)
                    self._recover(faults)
                    continue
            if cfg.watchdog_slack_periods > 0.0:
                late_ns = kernel.sim.now - armed_at - cfg.period_ns
                if late_ns > cfg.watchdog_slack_periods * cfg.period_ns:
                    self.stats.missed_periods += max(1, late_ns // cfg.period_ns)
                    self.stats.watchdog_resyncs += 1
                    self._shrink_votes = 0
                    kernel.machine.tracer.emit(
                        kernel.sim.now, "vscale", "watchdog_resync",
                        kernel.domain.name, late_ns=late_ns,
                    )
            reading = None
            for attempt in range(cfg.max_read_retries + 1):
                try:
                    reading = self.channel.read_info()
                except ChannelReadError as exc:
                    self.stats.read_failures += 1
                    yield Compute(exc.cost_ns)
                    if attempt < cfg.max_read_retries:
                        self.stats.read_retries += 1
                        yield Compute(cfg.retry_backoff_ns << attempt)
                    continue
                yield Compute(reading.cost_ns)
                break
            if reading is None:
                # Every retry failed: degrade by holding the current count
                # until next period rather than guessing.
                self.stats.read_abandons += 1
                continue
            if reading.stale:
                self.stats.stale_reads += 1
            if (
                cfg.staleness_limit_ns > 0
                and reading.published_at_ns is not None
                and kernel.sim.now - reading.published_at_ns > cfg.staleness_limit_ns
            ):
                # Expired data: hold the last-known-good vCPU count.
                self.stats.stale_holds += 1
                continue
            if self._recovering_since is not None and faults is not None:
                # Reconverged: a fresh reading is in hand, so decisions are
                # live again.  Account the epochs the recovery spanned.
                elapsed = kernel.sim.now - self._recovering_since
                epochs = max(1, -(-elapsed // cfg.period_ns))
                recovery = faults.recovery
                recovery.recoveries += 1
                recovery.recovery_epochs_total += epochs
                recovery.recovery_epochs_max = max(
                    recovery.recovery_epochs_max, epochs
                )
                self._recovering_since = None
            target = self._round_target(reading.extendability_ns, reading.n_opt)
            steps = self._decide(target)
            self._publish_state()
            applied = 0
            for index, freeze in steps:
                try:
                    if freeze:
                        self.balancer.freeze(index)
                    else:
                        self.balancer.unfreeze(index)
                except FreezeFailure:
                    # Transient syscall failure: the master already paid
                    # the cost; abandon the rest of the plan this period.
                    self.stats.reconfig_failures += 1
                    yield Compute(0)
                    break
                self.reconfigurations += 1
                applied += 1
                # The master-side cost was charged to rq0 by the balancer;
                # yield a zero-compute so it is consumed before continuing.
                yield Compute(0)
            if applied:
                self.trace.append((kernel.sim.now, kernel.online_vcpus))
                kernel.machine.tracer.emit(
                    kernel.sim.now, "vscale", "decision", kernel.domain.name,
                    online=kernel.online_vcpus,
                    extendability_ns=reading.extendability_ns,
                )

    # ------------------------------------------------------------------
    # Crash recovery
    # ------------------------------------------------------------------
    def _state_path(self) -> str:
        return f"/vscale/{self.kernel.domain.name}/daemon/state"

    def _publish_state(self) -> None:
        """Publish the hysteresis state as ONE xenstore key (one JSON
        value), so a reader never sees a torn multi-key update; single-key
        commits are atomic.  Write-on-change keeps the store quiet."""
        if not self.config.durable_state:
            return
        payload = json.dumps(
            {
                "direction": self._last_direction,
                "last_change_ns": self._last_change_ns,
                "shrink_votes": self._shrink_votes,
            },
            sort_keys=True,
        )
        if payload == self._published:
            return
        self._published = payload
        self.kernel.machine.xenstore.write(self._state_path(), payload)

    def _recover(self, faults) -> None:
        """Restart protocol: rebuild the control state after a crash.

        With durable state enabled the last committed xenstore snapshot is
        reloaded (a crash between write and commit simply reads the
        previous complete state — never a torn one).  Without it the
        daemon relearns its hysteresis from scratch; either way the
        reconvergence clock starts now and stops at the first fresh read.
        """
        kernel = self.kernel
        faults.recovery.daemon_restarts += 1
        self._recovering_since = kernel.sim.now
        if self.config.durable_state:
            store = kernel.machine.xenstore
            path = self._state_path()
            if store.exists(path):
                try:
                    saved = json.loads(store.read(path))
                except ValueError:
                    saved = None
                if isinstance(saved, dict):
                    self._last_direction = int(saved.get("direction", 0))
                    self._last_change_ns = int(saved.get("last_change_ns", 0))
                    self._shrink_votes = int(saved.get("shrink_votes", 0))
                    faults.recovery.state_restores += 1
        kernel.machine.tracer.emit(
            kernel.sim.now, "vscale", "daemon_restart", kernel.domain.name
        )

    def _round_target(self, extendability_ns: int, n_opt: int) -> int:
        """Turn extendability into a vCPU target per the rounding policy.

        ``n_opt`` is the hypervisor's ceil-rounded suggestion (Algorithm 1
        line 11/18); the daemon may round more conservatively — see
        :attr:`DaemonConfig.round_mode`.
        """
        mode = self.config.round_mode
        if mode == "ceil":
            return n_opt
        pcpus = extendability_ns / self.channel.domain.machine.config.vscale_period_ns
        import math

        if mode == "floor":
            return max(1, math.floor(pcpus + 1e-9))
        if mode == "conservative":
            base = math.floor(pcpus + 1e-9)
            fraction = pcpus - base
            if fraction >= self.config.partial_threshold:
                base += 1
            return max(1, base)
        raise ValueError(f"unknown round_mode {mode!r}")

    def _decide(self, n_opt: int) -> list[tuple[int, bool]]:
        """Map the optimal count to concrete freeze/unfreeze steps."""
        self.decisions += 1
        kernel = self.kernel
        total = len(kernel.runqueues)
        target = max(self.config.min_vcpus, min(n_opt, total))
        online = kernel.online_vcpus
        if target < online:
            self._shrink_votes += 1
            if self._shrink_votes < self.config.shrink_patience:
                return []
        else:
            self._shrink_votes = 0
        if target == online:
            return []
        direction = 1 if target > online else -1
        if self._last_direction != 0 and direction != self._last_direction:
            if (
                self.config.dwell_ns > 0
                and kernel.sim.now - self._last_change_ns < self.config.dwell_ns
            ):
                # Dwell-time hysteresis: a reversal this soon after the
                # last change is flapping, not a real demand shift.
                self.stats.flaps_suppressed += 1
                return []
            self.stats.direction_flaps += 1
        self._last_direction = direction
        self._last_change_ns = kernel.sim.now
        steps: list[tuple[int, bool]] = []
        if target > online:
            frozen = sorted(kernel.cpu_freeze_mask)
            for index in frozen[: target - online]:
                steps.append((index, False))
        else:
            online_set = [
                i for i in range(total) if i not in kernel.cpu_freeze_mask and i != 0
            ]
            for index in sorted(online_set, reverse=True)[: online - target]:
                steps.append((index, True))
        return steps[: self.config.max_steps_per_wakeup]

    # ------------------------------------------------------------------
    def vcpu_trace(self) -> list[tuple[int, int]]:
        """The (time, online vCPUs) trace, for Figure 8."""
        return list(self.trace)
