"""Application awareness: the paper's §7 future-work direction.

    "it should be beneficial if applications can be made aware of the
    VM's real computing power ... it would be interesting to explore how
    vScale's interface can directly assist applications to optimize their
    policy-specific decisions."

This module implements that interface: a :class:`ComputeAdvisor` exposes
the VM's current parallelism to applications (how many vCPUs are online
now, how many the extendability calculation says are worth having, and a
stability hint), plus a subscription API so runtimes can resize thread
pools when the daemon reconfigures — the application-level analogue of
``cpu_online_mask`` + notifier chains.

:class:`AdaptiveTeam` demonstrates the consumer side: a fork-join runtime
that sizes each *phase* of work from the advisor instead of pinning the
team size at launch, avoiding both over-subscription after a shrink and
under-parallelism after an expansion.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, TYPE_CHECKING

from repro.guest.actions import BlockOn, SpinFlag
from repro.guest.sync import OpenMPBarrier
from repro.units import MS

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.daemon import VScaleDaemon
    from repro.guest.kernel import GuestKernel
    from repro.guest.threads import Thread


@dataclass(frozen=True)
class ComputeAdvice:
    """A snapshot of the VM's real computing power."""

    #: vCPUs currently online (cpu_online_mask).
    online_vcpus: int
    #: The hypervisor's current optimal count (Algorithm 1's n_i).
    optimal_vcpus: int
    #: Extendability in units of full pCPUs.
    extendability_pcpus: float
    #: True when the last few observations agreed (safe to commit to a
    #: long parallel phase at this width).
    stable: bool

    @property
    def recommended_parallelism(self) -> int:
        """What an application should size its next parallel phase to."""
        return max(1, min(self.online_vcpus, self.optimal_vcpus))


class ComputeAdvisor:
    """Publishes :class:`ComputeAdvice` to applications.

    Wraps the daemon's channel readings; applications either poll
    :meth:`advice` or subscribe to reconfiguration callbacks.
    """

    #: Observations that must agree for the advice to count as stable.
    STABILITY_WINDOW = 3

    def __init__(self, kernel: "GuestKernel", daemon: "VScaleDaemon | None" = None):
        self.kernel = kernel
        self.daemon = daemon
        self._history: list[int] = []
        self._subscribers: list[Callable[[ComputeAdvice], None]] = []
        self.polls = 0

    def advice(self) -> ComputeAdvice:
        """Read the current computing power (one channel read when the
        daemon is present; pure guest state otherwise)."""
        self.polls += 1
        kernel = self.kernel
        online = kernel.online_vcpus
        machine = kernel.machine
        domain = kernel.domain
        if machine.vscale is not None:
            ext_ns, n_opt = machine.hyp_read_extendability(domain)
            period = machine.config.vscale_period_ns
            ext_pcpus = ext_ns / period
        else:
            n_opt = online
            ext_pcpus = float(online)
        self._history.append(n_opt)
        if len(self._history) > self.STABILITY_WINDOW:
            self._history.pop(0)
        stable = (
            len(self._history) == self.STABILITY_WINDOW
            and len(set(self._history)) == 1
        )
        return ComputeAdvice(
            online_vcpus=online,
            optimal_vcpus=n_opt,
            extendability_pcpus=ext_pcpus,
            stable=stable,
        )

    # ------------------------------------------------------------------
    def subscribe(self, callback: Callable[[ComputeAdvice], None]) -> None:
        """Register for a callback after every daemon reconfiguration."""
        self._subscribers.append(callback)
        if self.daemon is not None and not hasattr(self.daemon, "_advisor_hooked"):
            self._hook_daemon()

    def _hook_daemon(self) -> None:
        daemon = self.daemon
        assert daemon is not None
        original_decide = daemon._decide

        def wrapped(n_opt):
            steps = original_decide(n_opt)
            if steps:
                self.kernel.sim.schedule(0, self._notify)
            return steps

        daemon._decide = wrapped  # type: ignore[method-assign]
        daemon._advisor_hooked = True  # type: ignore[attr-defined]

    def _notify(self) -> None:
        advice = self.advice()
        for callback in self._subscribers:
            callback(advice)


class AdaptiveTeam:
    """A fork-join runtime that re-sizes its team between phases.

    Each call to :meth:`run_phases` launches worker threads sized from the
    advisor; between phases, the *leader* re-polls and the team grows or
    shrinks to the recommendation (idle workers simply skip phases they
    are not part of — mirroring OpenMP's ``if``/``num_threads`` clauses).
    """

    def __init__(self, kernel: "GuestKernel", advisor: ComputeAdvisor, name: str = "team"):
        self.kernel = kernel
        self.advisor = advisor
        self.name = name
        #: (phase index, width used) decisions, for inspection.
        self.width_log: list[tuple[int, int]] = []

    def run_phases(
        self,
        harness,
        phase_work: Callable[[int, int, int], object],
        phases: int,
        max_width: int | None = None,
    ) -> None:
        """Launch the team.

        ``phase_work(phase, rank, width)`` returns the behaviour fragment
        for one worker in one phase (a generator to ``yield from``), and
        must divide the phase's total work by ``width``.
        """
        width_cap = max_width or len(self.kernel.runqueues)
        barrier_box: dict[int, OpenMPBarrier] = {}
        width_box: dict[int, int] = {}

        def leader_picks(phase: int) -> int:
            advice = self.advisor.advice()
            width = min(width_cap, advice.recommended_parallelism)
            width_box[phase] = width
            barrier_box[phase] = OpenMPBarrier(
                self.kernel, parties=width_cap, spin_budget_ns=300_000,
                name=f"{self.name}.p{phase}",
            )
            self.width_log.append((phase, width))
            return width

        def make_factory(rank: int):
            def factory(thread: "Thread"):
                return self._worker(
                    thread, rank, phases, width_cap, leader_picks,
                    width_box, barrier_box, phase_work,
                )

            return factory

        harness.launch([make_factory(r) for r in range(width_cap)])

    def _worker(
        self, thread, rank, phases, width_cap, leader_picks,
        width_box, barrier_box, phase_work,
    ):
        for phase in range(phases):
            if rank == 0:
                leader_picks(phase)
                width_box.setdefault(phase, width_cap)
            else:
                # Wait until the leader published this phase's width.
                while phase not in width_box:
                    flag = SpinFlag(f"{self.name}.sync{phase}.{rank}")
                    self.kernel.start_timer(1 * MS, flag)
                    yield BlockOn(flag)
            width = width_box[phase]
            if rank < width:
                yield from phase_work(phase, rank, width)
            yield from barrier_box[phase].wait(thread)
