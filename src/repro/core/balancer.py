"""Algorithm 2: the vScale balancer — microsecond vCPU (un)freezing.

The balancer is the guest-kernel half of vScale.  Freezing vCPU ``k``
performs, *on the master vCPU (vCPU0)*, in this exact order:

1. set bit ``k`` of ``cpu_freeze_mask`` (stops push balancing towards it);
2. update the scheduling domain/group power that included vCPU ``k``;
3. hypercall ``SCHEDOP_freezecpu`` so vCPU ``k`` stops earning credits;
4. send a reschedule IPI to vCPU ``k`` to trigger its scheduler function.

The target vCPU then (a) migrates all migratable threads away, (b) stops
pulling tasks, and (c) redirects I/O interrupts — after which it idles and
the hypervisor parks it in the FROZEN state.  The split keeps the master's
cost at ~2.1 us (Table 3) because it never blocks on the migration.

Unfreezing runs the mirrored order and ends with a ``wake_up_idle_cpu``
kick so the target immediately pulls work from its siblings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.faults.errors import FreezeFailure
from repro.hypervisor.irq import IRQClass
from repro.metrics.collectors import LatencyReservoir
from repro.sim.rng import jittered_sum

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.guest.kernel import GuestKernel


@dataclass(frozen=True)
class BalancerCosts:
    """Master-vCPU step costs, in nanoseconds (Table 3's breakdown)."""

    syscall_ns: int = 690          # (1) sys_freezecpu entry
    lock_ns: int = 60              # (2) cpu_freeze_lock +irq save/restore
    mask_ns: int = 30              # (3) flip cpu_freeze_mask bit
    group_power_ns: int = 120      # (4) update sched domain/group power
    hypercall_ns: int = 220        # (5) SCHEDOP_freezecpu
    ipi_send_ns: int = 980         # (6) send the reschedule IPI

    def __post_init__(self) -> None:
        for name in (
            "syscall_ns",
            "lock_ns",
            "mask_ns",
            "group_power_ns",
            "hypercall_ns",
            "ipi_send_ns",
        ):
            value = getattr(self, name)
            if value <= 0:
                raise ValueError(f"{name} must be positive, got {value}")

    @property
    def total_ns(self) -> int:
        return (
            self.syscall_ns
            + self.lock_ns
            + self.mask_ns
            + self.group_power_ns
            + self.hypercall_ns
            + self.ipi_send_ns
        )

    def cumulative(self) -> list[tuple[str, int, int]]:
        """(step label, step cost, running total) rows for Table 3."""
        steps = [
            ("(1) System call (sys_freezecpu)", self.syscall_ns),
            ("(2) Acquire and release cpu_freeze_lock", self.lock_ns),
            ("(3) Change cpu_freeze_mask", self.mask_ns),
            ("(4) Update the power of sched domains/groups", self.group_power_ns),
            ("(5) Notify the hypervisor via hypercall", self.hypercall_ns),
            ("(6) Send a reschedule IPI", self.ipi_send_ns),
        ]
        rows = []
        running = 0
        for label, cost in steps:
            running += cost
            rows.append((label, cost, running))
        return rows


@dataclass
class FreezeReport:
    """What one freeze/unfreeze operation cost and did."""

    vcpu: int
    freeze: bool
    master_cost_ns: int
    threads_to_migrate: int


class VScaleBalancer:
    """The kernel module exposing sys_freezecpu / sys_unfreezecpu."""

    def __init__(
        self,
        kernel: "GuestKernel",
        costs: BalancerCosts | None = None,
        rng: np.random.Generator | None = None,
    ):
        self.kernel = kernel
        self.costs = costs or BalancerCosts()
        self.rng = rng or kernel.machine.seeds.stream(
            f"balancer.{kernel.domain.name}", "normal"
        )
        self.master_latency = LatencyReservoir()
        self.freezes = 0
        self.unfreezes = 0
        #: Injected transient syscall failures (fault experiments only).
        self.failed_ops = 0

    # ------------------------------------------------------------------
    def frozen_set(self) -> set[int]:
        return set(self.kernel.cpu_freeze_mask)

    def online_count(self) -> int:
        return self.kernel.online_vcpus

    def freeze(self, index: int) -> FreezeReport:
        """sys_freezecpu(index): Algorithm 2, master side.

        Returns the report; the master's cost is charged to vCPU0's
        runqueue so the daemon actually spends the microseconds.
        """
        kernel = self.kernel
        if index == 0:
            raise ValueError("the master vCPU (vCPU0) cannot be frozen")
        if not 0 <= index < len(kernel.runqueues):
            raise ValueError(f"no vCPU {index}")
        if index in kernel.cpu_freeze_mask:
            raise ValueError(f"vCPU {index} already frozen")
        cost = self._master_cost()
        faults = kernel.machine.faults
        if faults is not None and faults.freeze_fault():
            # The syscall ran and failed before touching any state: the
            # master still paid for it.
            self._charge_master(cost)
            self.failed_ops += 1
            machine = kernel.machine
            machine.tracer.emit(
                machine.sim.now, "fault", "freeze_failed",
                kernel.domain.vcpus[index].name, op="freeze",
            )
            raise FreezeFailure("freeze", index, cost)
        vcpu = kernel.domain.vcpus[index]
        # (1)+(2) syscall + lock are pure cost; (3) flip the mask:
        kernel.cpu_freeze_mask.add(index)
        # (4) update scheduling group power: modelled as cost only — the
        # simulation's load metric derives from the mask directly.
        # (5) notify the hypervisor: stop crediting the target.
        kernel.machine.hyp_mark_freeze(vcpu)
        # (6) reschedule IPI so the target's scheduler migrates everything.
        kernel.run_in_context(
            0,
            lambda: kernel.machine.hyp_send_ipi(
                kernel.domain.vcpus[0], vcpu, IRQClass.RESCHED_IPI
            ),
        )
        kernel.ipi_sent[0].inc()
        # Paper §4.2: the hypervisor expedites vCPUs with pending
        # reconfiguration IPIs.
        kernel.machine.hyp_tickle_vcpu(vcpu)
        self._charge_master(cost)
        self.freezes += 1
        sanitizer = kernel.machine.sanitizer
        if sanitizer is not None:
            sanitizer.check_balancer_op(kernel, index, freeze=True)
        threads = len(kernel.runqueues[index].ready) + (
            1 if kernel.runqueues[index].current else 0
        )
        return FreezeReport(index, True, cost, threads)

    def unfreeze(self, index: int) -> FreezeReport:
        """sys_unfreezecpu(index): the mirrored sequence."""
        kernel = self.kernel
        if index not in kernel.cpu_freeze_mask:
            raise ValueError(f"vCPU {index} is not frozen")
        cost = self._master_cost()
        faults = kernel.machine.faults
        if faults is not None and faults.freeze_fault():
            self._charge_master(cost)
            self.failed_ops += 1
            machine = kernel.machine
            machine.tracer.emit(
                machine.sim.now, "fault", "freeze_failed",
                kernel.domain.vcpus[index].name, op="unfreeze",
            )
            raise FreezeFailure("unfreeze", index, cost)
        vcpu = kernel.domain.vcpus[index]
        kernel.cpu_freeze_mask.discard(index)
        kernel.machine.hyp_unfreeze_vcpu(vcpu)
        # wake_up_idle_cpu(): the target pulls threads via idle balance as
        # soon as it runs; the RESCHED IPI rides the wake above.
        kernel.run_in_context(
            0,
            lambda: kernel.machine.hyp_send_ipi(
                kernel.domain.vcpus[0], vcpu, IRQClass.RESCHED_IPI
            ),
        )
        kernel.ipi_sent[0].inc()
        self._charge_master(cost)
        self.unfreezes += 1
        sanitizer = kernel.machine.sanitizer
        if sanitizer is not None:
            sanitizer.check_balancer_op(kernel, index, freeze=False)
        return FreezeReport(index, False, cost, 0)

    # ------------------------------------------------------------------
    def _master_cost(self) -> int:
        cost = jittered_sum(
            self.rng,
            (
                (self.costs.syscall_ns, 0.05),
                (self.costs.lock_ns, 0.10),
                (self.costs.mask_ns, 0.10),
                (self.costs.group_power_ns, 0.10),
                (self.costs.hypercall_ns, 0.08),
                (self.costs.ipi_send_ns, 0.05),
            ),
        )
        self.master_latency.record(cost)
        return cost

    def _charge_master(self, cost: int) -> None:
        self.kernel.runqueues[0].pending_overhead_ns += cost

    def measure_master_breakdown(self, iterations: int) -> list[tuple[str, float, float]]:
        """Monte-Carlo the Table 3 rows: (label, mean step us, cumulative us)."""
        if iterations < 1:
            raise ValueError("need at least one iteration")
        labels = [row[0] for row in self.costs.cumulative()]
        means = []
        for label, mean in zip(
            labels,
            (
                self.costs.syscall_ns,
                self.costs.lock_ns,
                self.costs.mask_ns,
                self.costs.group_power_ns,
                self.costs.hypercall_ns,
                self.costs.ipi_send_ns,
            ),
        ):
            samples = self.rng.normal(mean, mean * 0.08, size=iterations)
            means.append((label, float(np.mean(samples))))
        rows = []
        running = 0.0
        for label, mean in means:
            running += mean
            rows.append((label, mean / 1000.0, running / 1000.0))
        return rows
