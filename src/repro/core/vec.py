"""Optional vectorized kernels for batch accounting paths.

The hot per-epoch loops (credit distribution, clipped balance updates)
are elementwise float operations.  When numpy is importable they run as
single array expressions; otherwise — or under ``REPRO_NO_VECTOR=1`` —
a plain scalar loop produces **bit-identical** results, so goldens and
the hypothesis equivalence suites hold on either path.

Only *elementwise* operations are vectorized: ``v + d``, ``min``/``max``
clamping and the like are IEEE-identical whether they run through numpy
ufuncs or Python floats.  Reductions (``sum``) are deliberately left as
Python left-folds in the callers — ``np.sum`` uses pairwise summation,
which rounds differently, and determinism outranks speed here.

numpy itself remains a base dependency of the package because the
deterministic RNG streams are ``numpy.random.Generator`` (PCG64) state —
the ``[fast]`` extra exists to opt a deployment into the vectorized
batch paths explicitly, and this module degrades to the scalar loop when
the import is unavailable (e.g. a vendored trimmed install) or disabled.
"""

from __future__ import annotations

import os

try:  # pragma: no cover - exercised via REPRO_NO_VECTOR in tests
    import numpy as _np
except ImportError:  # pragma: no cover - bare install
    _np = None

HAVE_NUMPY = _np is not None


def _vector_enabled() -> bool:
    return HAVE_NUMPY and os.environ.get("REPRO_NO_VECTOR", "0") != "1"


def clipped_add(values, delta, lo, hi):
    """Elementwise ``min(hi, max(lo, v + delta))`` over ``values``.

    The credit scheduler's per-epoch balance update (csched_acct's clamp
    to ``[-acct, +acct]``), batched over all active vCPUs of a domain.

    Bit-identical to the scalar loop on both paths: addition and
    min/max on IEEE doubles are single correctly-rounded operations and
    ``np.clip`` composes the same primitives elementwise.  One Python
    quirk is preserved deliberately: ``min(hi, max(lo, x))`` returns the
    *bound object itself* (often an int) when it clamps, and serialized
    state (checkpoint fingerprints) can see the int/float difference —
    so the vector path substitutes the original ``lo``/``hi`` objects
    back into clamped slots.
    """
    if len(values) >= _MIN_BATCH and _vector_enabled():
        arr = _np.asarray(values, dtype=_np.float64)
        out = _np.clip(arr + delta, lo, hi).tolist()
        return [lo if x == lo else hi if x == hi else x for x in out]
    return [min(hi, max(lo, v + delta)) for v in values]


#: Below this batch size the array round-trip costs more than it saves.
_MIN_BATCH = 8
