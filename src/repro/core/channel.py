"""The vScale channel: guest userspace -> hypervisor scheduler, in ~1 us.

The channel is the decentralized alternative to dom0/libxl monitoring.  A
read is one system call (``sys_getvscaleinfo``) that performs one hypercall
(``SCHEDOP_getvscaleinfo``) and copies the domain's published extendability
back to user space.  Table 1 reports the measured costs:

==============================================  ===============
operation                                        overhead (us)
==============================================  ===============
system call (sys_getvscaleinfo)                  0.69
+ hypercall (SCHEDOP_getvscaleinfo)              +0.22 = 0.91
==============================================  ===============

We embed those costs as simulation latencies (with realistic jitter) so the
daemon's polling both *reports* and *spends* them.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.faults.errors import ChannelReadError
from repro.metrics.collectors import LatencyReservoir
from repro.sim.rng import jittered_sum

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.hypervisor.domain import Domain


@dataclass(frozen=True)
class ChannelCosts:
    """Mean costs of a channel read's two components, in nanoseconds."""

    syscall_ns: int = 690
    hypercall_ns: int = 220

    def __post_init__(self) -> None:
        if self.syscall_ns <= 0:
            raise ValueError(f"syscall_ns must be positive, got {self.syscall_ns}")
        if self.hypercall_ns <= 0:
            raise ValueError(f"hypercall_ns must be positive, got {self.hypercall_ns}")

    @property
    def total_ns(self) -> int:
        return self.syscall_ns + self.hypercall_ns


@dataclass(frozen=True)
class ChannelReading:
    """One channel read's result, with provenance for the staleness guard."""

    extendability_ns: int
    n_opt: int
    #: CPU cost of the read itself (syscall + hypercall, jittered).
    cost_ns: int
    #: When the hypervisor published the returned values (sim ns); None
    #: before the first ticker run.
    published_at_ns: int | None
    #: True when fault injection served an out-of-date snapshot.
    stale: bool = False


class VScaleChannel:
    """Per-domain handle for reading CPU extendability."""

    def __init__(
        self,
        domain: "Domain",
        costs: ChannelCosts | None = None,
        rng: np.random.Generator | None = None,
    ):
        self.domain = domain
        self.costs = costs or ChannelCosts()
        self.rng = rng or domain.machine.seeds.stream(f"channel.{domain.name}", "normal")
        self.reads = 0
        self.read_latency = LatencyReservoir()
        self.failed_reads = 0
        self.stale_reads = 0
        #: Recent successful readings; stale-read injection replays the
        #: oldest one, modelling a racing ticker/read pair that returns
        #: the previous period's snapshot.
        self._history: deque[ChannelReading] = deque(maxlen=8)

    def read(self) -> tuple[int, int, int]:
        """One sys_getvscaleinfo: returns (extendability_ns, n_opt, cost_ns).

        The caller (the daemon's thread behaviour) is responsible for
        charging ``cost_ns`` as compute time; the channel records it for
        the Table 1 benchmark.
        """
        reading = self.read_info()
        return reading.extendability_ns, reading.n_opt, reading.cost_ns

    def read_info(self) -> ChannelReading:
        """One read, with publish-time provenance.

        With a fault injector installed the read can fail (raising
        :class:`ChannelReadError` after charging the cost) or return a
        stale snapshot from the recent-read history.
        """
        machine = self.domain.machine
        cost = jittered_sum(
            self.rng,
            ((self.costs.syscall_ns, 0.06), (self.costs.hypercall_ns, 0.08)),
        )
        self.reads += 1
        self.read_latency.record(cost)
        fate = None if machine.faults is None else machine.faults.channel_fault()
        if fate == "fail":
            self.failed_reads += 1
            machine.tracer.emit(
                machine.sim.now, "fault", "channel_fail", self.domain.name,
                cost_ns=cost,
            )
            raise ChannelReadError(self.domain.name, cost)
        if fate == "stale" and self._history:
            self.stale_reads += 1
            machine.tracer.emit(
                machine.sim.now, "fault", "channel_stale", self.domain.name,
            )
            oldest = self._history[0]
            return ChannelReading(
                extendability_ns=oldest.extendability_ns,
                n_opt=oldest.n_opt,
                cost_ns=cost,
                published_at_ns=oldest.published_at_ns,
                stale=True,
            )
        extendability_ns, n_opt = machine.hyp_read_extendability(self.domain)
        reading = ChannelReading(
            extendability_ns=extendability_ns,
            n_opt=n_opt,
            cost_ns=cost,
            published_at_ns=self.domain.extendability_published_ns,
        )
        self._history.append(reading)
        return reading

    def measure_components(self, iterations: int) -> dict[str, float]:
        """Micro-benchmark the two components, as Table 1 does (1 M runs)."""
        if iterations < 1:
            raise ValueError("need at least one iteration")
        syscall = self.rng.normal(
            self.costs.syscall_ns, self.costs.syscall_ns * 0.06, size=iterations
        )
        hypercall = self.rng.normal(
            self.costs.hypercall_ns, self.costs.hypercall_ns * 0.08, size=iterations
        )
        return {
            "syscall_ns": float(np.mean(syscall)),
            "hypercall_ns": float(np.mean(hypercall)),
            "total_ns": float(np.mean(syscall + hypercall)),
        }
