"""The vScale channel: guest userspace -> hypervisor scheduler, in ~1 us.

The channel is the decentralized alternative to dom0/libxl monitoring.  A
read is one system call (``sys_getvscaleinfo``) that performs one hypercall
(``SCHEDOP_getvscaleinfo``) and copies the domain's published extendability
back to user space.  Table 1 reports the measured costs:

==============================================  ===============
operation                                        overhead (us)
==============================================  ===============
system call (sys_getvscaleinfo)                  0.69
+ hypercall (SCHEDOP_getvscaleinfo)              +0.22 = 0.91
==============================================  ===============

We embed those costs as simulation latencies (with realistic jitter) so the
daemon's polling both *reports* and *spends* them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.metrics.collectors import LatencyReservoir
from repro.sim.rng import jittered

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.hypervisor.domain import Domain


@dataclass(frozen=True)
class ChannelCosts:
    """Mean costs of a channel read's two components, in nanoseconds."""

    syscall_ns: int = 690
    hypercall_ns: int = 220

    @property
    def total_ns(self) -> int:
        return self.syscall_ns + self.hypercall_ns


class VScaleChannel:
    """Per-domain handle for reading CPU extendability."""

    def __init__(
        self,
        domain: "Domain",
        costs: ChannelCosts | None = None,
        rng: np.random.Generator | None = None,
    ):
        self.domain = domain
        self.costs = costs or ChannelCosts()
        self.rng = rng or domain.machine.seeds.generator(f"channel.{domain.name}")
        self.reads = 0
        self.read_latency = LatencyReservoir()

    def read(self) -> tuple[int, int, int]:
        """One sys_getvscaleinfo: returns (extendability_ns, n_opt, cost_ns).

        The caller (the daemon's thread behaviour) is responsible for
        charging ``cost_ns`` as compute time; the channel records it for
        the Table 1 benchmark.
        """
        extendability_ns, n_opt = self.domain.machine.hyp_read_extendability(self.domain)
        cost = jittered(self.rng, self.costs.syscall_ns, 0.06) + jittered(
            self.rng, self.costs.hypercall_ns, 0.08
        )
        self.reads += 1
        self.read_latency.record(cost)
        return extendability_ns, n_opt, cost

    def measure_components(self, iterations: int) -> dict[str, float]:
        """Micro-benchmark the two components, as Table 1 does (1 M runs)."""
        if iterations < 1:
            raise ValueError("need at least one iteration")
        syscall = self.rng.normal(
            self.costs.syscall_ns, self.costs.syscall_ns * 0.06, size=iterations
        )
        hypercall = self.rng.normal(
            self.costs.hypercall_ns, self.costs.hypercall_ns * 0.08, size=iterations
        )
        return {
            "syscall_ns": float(np.mean(syscall)),
            "hypercall_ns": float(np.mean(hypercall)),
            "total_ns": float(np.mean(syscall + hypercall)),
        }
