"""Algorithm 1: computing each VM's CPU extendability.

vScale defines a VM's *CPU extendability* as the maximum amount of CPU the
VM could receive from the hypervisor under work-conserving, proportional
sharing, given the other VMs' observed consumption.  The algorithm:

1. Compute every VM's fair share for the period: ``s_fair = w_i / Σw · t · P``.
2. VMs that consumed less than their fair share are **releasers**: the
   unused part of their fair share goes into the pool-wide slack, and their
   extendability is pinned to their fair share (so a releaser can always
   ramp straight back up to its deserved parallelism).
3. VMs that consumed at least their fair share are **competitors**: each
   receives, on top of its fair share, a weight-proportional slice of the
   slack.
4. The optimal vCPU count is ``n_i = ceil(s_ext / t)`` — the number of
   full-capacity pCPUs the VM could keep busy, with one extra vCPU allowed
   for a partial allocation.

Reservations and caps clamp the extendability before the ceiling is taken.

The :class:`VScaleExtension` wires the pure function into the hypervisor: a
10 ms ticker samples each domain's consumption from the credit scheduler's
own accounting data and publishes ``(extendability, n_i)`` into the domain
struct, where the guest reads it through the vScale channel.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.hypervisor.domain import Domain
    from repro.hypervisor.machine import Machine


@dataclass(frozen=True)
class VMUsage:
    """Input row for one VM: scheduling parameters + observed consumption."""

    name: str
    weight: int
    #: CPU consumed during the period, in ns of pCPU time.
    consumed_ns: int
    #: Optional bounds, both expressed in pCPUs (cap=2.0 means "at most two
    #: full pCPUs worth of time per period").
    reservation: float = 0.0
    cap: float | None = None
    #: Number of (online) vCPUs the VM currently has; the optimal count is
    #: additionally clamped to the VM's provisioned maximum by the caller.
    max_vcpus: int | None = None

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ValueError(f"{self.name}: weight must be positive")
        if self.consumed_ns < 0:
            raise ValueError(f"{self.name}: consumption cannot be negative")
        if self.reservation < 0:
            raise ValueError(f"{self.name}: reservation cannot be negative")
        if self.cap is not None and self.cap <= 0:
            raise ValueError(f"{self.name}: cap must be positive when set")


@dataclass(frozen=True)
class ExtendabilityResult:
    """Output row for one VM."""

    name: str
    fair_share_ns: int
    extendability_ns: int
    optimal_vcpus: int
    is_competitor: bool


def compute_extendability(
    usages: Sequence[VMUsage],
    pool_pcpus: int,
    period_ns: int,
    competitor_tolerance: float = 0.0,
) -> dict[str, ExtendabilityResult]:
    """Run Algorithm 1 over one accounting period.

    Parameters
    ----------
    usages:
        Per-VM weight and consumption over the period.
    pool_pcpus:
        ``P`` — the number of pCPUs in the shared pool.
    period_ns:
        ``t`` — the recalculation period (paper default: 10 ms).
    competitor_tolerance:
        Classify a VM as a competitor when it consumed at least
        ``(1 - tolerance) x`` its fair share.  Algorithm 1 uses an exact
        comparison (tolerance 0); the in-hypervisor extension passes a few
        percent so measurement noise at the boundary cannot flap the
        classification.

    Returns
    -------
    Mapping from VM name to its :class:`ExtendabilityResult`.

    Properties (enforced by the property-based tests):

    * Work conservation: Σ extendability ≥ P·t when any competitor exists,
      and Σ min(extendability, demand-at-fair) never exceeds capacity.
    * Max–min fairness: slack is split between competitors proportionally
      to weight.
    * A releaser's extendability equals its fair share (ramp-up guarantee).
    * ``1 ≤ n_i ≤ P`` (after clamping) for every VM.
    """
    if pool_pcpus < 1:
        raise ValueError("pool must contain at least one pCPU")
    if period_ns <= 0:
        raise ValueError("period must be positive")
    if not usages:
        return {}
    names = [u.name for u in usages]
    if len(set(names)) != len(names):
        raise ValueError("duplicate VM names in usage list")

    total_weight = sum(u.weight for u in usages)
    capacity = pool_pcpus * period_ns

    slack = 0.0
    competitors: list[VMUsage] = []
    fair_share: dict[str, float] = {}
    extendability: dict[str, float] = {}

    for usage in usages:
        s_fair = usage.weight / total_weight * capacity
        fair_share[usage.name] = s_fair
        # A cap below the fair share limits what the VM may consume, and
        # therefore what it releases or competes for.
        effective_fair = s_fair
        if usage.cap is not None:
            effective_fair = min(effective_fair, usage.cap * period_ns)
        if usage.consumed_ns < effective_fair * (1.0 - competitor_tolerance):
            # Releaser: contributes slack; extendability pinned to fair
            # share so its deserved parallelism stays available.
            slack += effective_fair - usage.consumed_ns
            extendability[usage.name] = effective_fair
        else:
            competitors.append(usage)

    competitor_weight = sum(u.weight for u in competitors)
    competitor_names = {u.name for u in competitors}
    for usage in competitors:
        s_fair = fair_share[usage.name]
        share_of_slack = (usage.weight / competitor_weight) * slack
        extendability[usage.name] = s_fair + share_of_slack

    results: dict[str, ExtendabilityResult] = {}
    for usage in usages:
        ext = extendability[usage.name]
        # Reservation (lower bound) and cap (upper bound), both in pCPUs.
        ext = max(ext, usage.reservation * period_ns)
        if usage.cap is not None:
            ext = min(ext, usage.cap * period_ns)
        ext = min(ext, capacity)
        n = math.ceil(ext / period_ns - _CEIL_EPSILON)
        n = max(1, min(n, pool_pcpus))
        if usage.max_vcpus is not None:
            n = min(n, usage.max_vcpus)
        results[usage.name] = ExtendabilityResult(
            name=usage.name,
            fair_share_ns=round(fair_share[usage.name]),
            extendability_ns=round(ext),
            optimal_vcpus=n,
            is_competitor=usage.name in competitor_names,
        )
    return results


#: Guard against float noise pushing e.g. exactly-2.0 pCPUs to ceil() == 3.
_CEIL_EPSILON = 1e-9


class VScaleExtension:
    """The hypervisor-side vScale scheduler extension.

    Runs ``vscale_ticker_fn`` every ``vscale_period_ns`` (default 10 ms) on
    the pool's master pCPU: samples per-domain consumption accumulated by
    ``burn_credits`` since the previous tick, runs Algorithm 1, and stores
    the result in each domain struct for the guest to read via the channel.

    UP domains (a single provisioned vCPU) are skipped — they have no room
    to scale — but they still participate as competitors/releasers in the
    calculation, exactly as in the paper.
    """

    #: EWMA weight of the newest window.  The credit scheduler's 30 ms
    #: slices make raw 10 ms consumption windows bursty (a domain runs for
    #: a whole slice, then waits); smoothing over ~3 windows recovers the
    #: true demand without noticeably delaying reaction to load changes.
    EWMA_ALPHA = 0.4
    #: Classification slack at the competitor/releaser boundary (see
    #: ``compute_extendability``).
    COMPETITOR_TOLERANCE = 0.05

    def __init__(self, machine: "Machine"):
        self.machine = machine
        self.period_ns = machine.config.vscale_period_ns
        self._last_consumed: dict[str, int] = {}
        self._ewma: dict[str, float] = {}
        self._running = False
        #: Exposed for tests: the most recent full result set.
        self.last_results: dict[str, ExtendabilityResult] = {}
        #: Count of reconfigurations observed (freeze/unfreeze hypercalls).
        self.reconfigurations: dict[str, int] = {}

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self.machine.sim.schedule(self.period_ns, self._ticker)

    def _ticker(self) -> None:
        self.recompute()
        self.machine.sim.schedule(self.period_ns, self._ticker)

    def recompute(self) -> dict[str, ExtendabilityResult]:
        """One vscale_ticker_fn invocation (callable directly from tests)."""
        machine = self.machine
        now = machine.sim.now
        usages = []
        for domain in machine.domains:
            consumed_total = domain.total_consumed_ns
            # Include the in-flight running intervals so a domain that has
            # been on-CPU for the whole period is seen as consuming.
            for vcpu in domain.vcpus:
                if vcpu.run_started_at is not None:
                    consumed_total += now - vcpu.run_started_at
            previous = self._last_consumed.get(domain.name, 0)
            consumed = max(0, consumed_total - previous)
            self._last_consumed[domain.name] = consumed_total
            smoothed = self._ewma.get(domain.name, float(consumed))
            smoothed += self.EWMA_ALPHA * (consumed - smoothed)
            self._ewma[domain.name] = smoothed
            usages.append(
                VMUsage(
                    name=domain.name,
                    weight=domain.weight,
                    consumed_ns=round(smoothed),
                    reservation=domain.reservation,
                    cap=domain.cap,
                    max_vcpus=len(domain.vcpus),
                )
            )
        results = compute_extendability(
            usages,
            pool_pcpus=machine.config.pcpus,
            period_ns=self.period_ns,
            competitor_tolerance=self.COMPETITOR_TOLERANCE,
        )
        for domain in machine.domains:
            result = results[domain.name]
            if len(domain.vcpus) > 1:  # UP-VMs are omitted (no room to scale)
                domain.extendability_ns = result.extendability_ns
                domain.optimal_vcpus = result.optimal_vcpus
                domain.extendability_published_ns = now
        self.last_results = results
        sanitizer = machine.sanitizer
        if sanitizer is not None:
            sanitizer.check_extendability(
                usages,
                results,
                pool_pcpus=machine.config.pcpus,
                period_ns=self.period_ns,
                tolerance=self.COMPETITOR_TOLERANCE,
            )
        return results

    def read(self, domain: "Domain") -> tuple[int, int]:
        """Serve SCHEDOP_getvscaleinfo for one domain."""
        if domain.extendability_ns is None or domain.optimal_vcpus is None:
            # Before the first tick: report full-capacity optimism, which
            # matches Xen booting all provisioned vCPUs.
            return (
                self.machine.config.pcpus * self.period_ns,
                min(len(domain.vcpus), self.machine.config.pcpus),
            )
        return domain.extendability_ns, domain.optimal_vcpus

    def note_reconfiguration(self, domain: "Domain") -> None:
        """Track freeze/unfreeze hypercalls (accounting skips frozen vCPUs
        immediately via Domain.active_vcpus(); this is just bookkeeping)."""
        self.reconfigurations[domain.name] = self.reconfigurations.get(domain.name, 0) + 1
