"""vScale's primary contribution: the CPU-extendability algorithm, the
hypervisor/guest communication channel, the fast vCPU balancer (freeze /
unfreeze), the user-space daemon, and the baseline scaling managers the
paper compares against."""

from repro.core.extendability import (
    VMUsage,
    ExtendabilityResult,
    compute_extendability,
    VScaleExtension,
)
from repro.core.channel import ChannelCosts, VScaleChannel
from repro.core.balancer import BalancerCosts, FreezeReport, VScaleBalancer
from repro.core.daemon import DaemonConfig, VScaleDaemon
from repro.core.baselines import FixedVCPUPolicy, HotplugScaler, VCPUBalManager
from repro.core.advisor import AdaptiveTeam, ComputeAdvice, ComputeAdvisor

__all__ = [
    "VMUsage",
    "ExtendabilityResult",
    "compute_extendability",
    "VScaleExtension",
    "ChannelCosts",
    "VScaleChannel",
    "BalancerCosts",
    "FreezeReport",
    "VScaleBalancer",
    "DaemonConfig",
    "VScaleDaemon",
    "FixedVCPUPolicy",
    "HotplugScaler",
    "VCPUBalManager",
    "AdaptiveTeam",
    "ComputeAdvice",
    "ComputeAdvisor",
]
