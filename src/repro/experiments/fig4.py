"""Figure 4: min/avg/max cost of reading all VMs' CPU consumption through
dom0's libxl toolstack, as the number of VMs and dom0's I/O load vary.

The paper sweeps 1-50 co-located VMs under three dom0 conditions (idle,
disk I/O forwarding, network I/O forwarding), 10 000 reads per point, and
contrasts the centralized costs with the ~1 us decentralized vScale
channel read of Table 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hypervisor.dom0 import Dom0Load, Dom0Toolstack
from repro.metrics.report import Table
from repro.sim.rng import SeedSequenceFactory

#: The VM counts on the paper's x axis.
VM_COUNTS = [1, 10, 20, 30, 40, 50]


@dataclass
class Fig4Result:
    #: load -> vm_count -> {min_ns, avg_ns, max_ns}
    points: dict[Dom0Load, dict[int, dict[str, float]]] = field(default_factory=dict)

    def render(self) -> str:
        table = Table(
            "Figure 4: libxl read-all-VMs latency (ms)",
            ["dom0 load", "#VMs", "min", "avg", "max"],
        )
        for load, series in self.points.items():
            for count, stats in series.items():
                table.add_row(
                    load.value,
                    count,
                    stats["min_ns"] / 1e6,
                    stats["avg_ns"] / 1e6,
                    stats["max_ns"] / 1e6,
                )
        return table.render()

    def avg_ms(self, load: Dom0Load, vm_count: int) -> float:
        return self.points[load][vm_count]["avg_ns"] / 1e6

    def max_ms(self, load: Dom0Load, vm_count: int) -> float:
        return self.points[load][vm_count]["max_ns"] / 1e6


def run(iterations: int = 10_000, seed: int = 1, vm_counts: list[int] | None = None) -> Fig4Result:
    seeds = SeedSequenceFactory(seed)
    result = Fig4Result()
    for load in Dom0Load:
        toolstack = Dom0Toolstack(seeds.generator(f"libxl.{load.name}"), load=load)
        series: dict[int, dict[str, float]] = {}
        for count in vm_counts or VM_COUNTS:
            series[count] = toolstack.measure(count, iterations)
        result.points[load] = series
    return result
