"""Shared runner for the NPB experiments (Figures 6, 7, 9 and 10).

One *cell* of the NPB matrix = (application, vCPU count, GOMP_SPINCOUNT,
configuration).  The runner builds the consolidated scenario, warms the
background VMs, launches the app with the provisioned thread count, and
returns the measurements every NPB figure needs: duration, worker waiting
time over the app window, and the per-vCPU IPI rate.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.setups import Config, ScenarioBuilder, run_until_done
from repro.sim.rng import SeedSequenceFactory
from repro.units import SEC
from repro.workloads.npb import NPBApp, NPB_PROFILES

#: Background warm-up before the application launches.
WARMUP_NS = 2 * SEC


@dataclass
class NPBCell:
    app: str
    vcpus: int
    spincount: int
    config: Config
    duration_ns: int
    wait_ns: int
    cpu_used_ns: int
    #: Reschedule IPIs received per vCPU per second during the app run.
    ipi_rate_per_vcpu: float
    #: Trace of (time_ns, online_vcpus) from the daemon, when present.
    vcpu_trace: list


def run_cell(
    app_name: str,
    vcpus: int,
    spincount: int,
    config: Config,
    seed: int = 3,
    work_scale: float = 1.0,
    daemon_config=None,
    pcpus: int | None = None,
    scheduler: str | None = None,
) -> NPBCell:
    """Run one cell of the NPB matrix and collect its measurements.

    The pool is sized so the worker keeps the paper's relative position —
    a quarter of the host's weight — at either VM size: the 4-vCPU VM runs
    on 8 pCPUs with 6 desktops, the 8-vCPU VM on 16 pCPUs with 12 (the
    testbed had 16 logical CPUs; consolidation stays at 2 vCPUs/pCPU).

    ``scheduler`` selects the pool scheduler by registry name (see
    :mod:`repro.hypervisor.schedulers`); ``None`` keeps the default.
    """
    if app_name not in NPB_PROFILES:
        raise KeyError(f"unknown NPB app {app_name!r}")
    if pcpus is None:
        pcpus = 16 if vcpus >= 8 else 8
    builder = (
        ScenarioBuilder(seed=seed, pcpus=pcpus)
        .with_worker_vm(vcpus)
        .with_config(config)
        .with_scheduler(scheduler)
    )
    if daemon_config is not None:
        builder.daemon_config = daemon_config
    scenario = builder.build()
    scenario.start()
    scenario.run(WARMUP_NS)

    profile = NPB_PROFILES[app_name]
    if work_scale != 1.0:
        from dataclasses import replace

        profile = replace(
            profile, iterations=max(2, round(profile.iterations * work_scale))
        )

    seeds = SeedSequenceFactory(seed)
    domain = scenario.worker_domain
    machine = scenario.machine
    wait0 = domain.total_wait_ns(machine.sim.now)
    run0 = domain.total_run_ns(machine.sim.now)
    ipi0 = sum(int(v.ipi_received) for v in domain.vcpus)

    # The futex-bucket kernel lock exists in every configuration; the
    # pv_spinlock guest option only changes how waiters behave on it.
    app = NPBApp(
        scenario.worker_kernel,
        profile,
        spincount,
        seeds.stream("npb", "normal"),
        kernel_lock=scenario.worker_kernel_lock,
    )
    app.launch()
    duration = run_until_done(scenario, app)

    now = machine.sim.now
    wait = domain.total_wait_ns(now) - wait0
    used = domain.total_run_ns(now) - run0
    ipis = sum(int(v.ipi_received) for v in domain.vcpus) - ipi0
    ipi_rate = ipis / len(domain.vcpus) * 1e9 / duration
    trace = scenario.daemon.vcpu_trace() if scenario.daemon else []
    return NPBCell(
        app=app_name,
        vcpus=vcpus,
        spincount=spincount,
        config=config,
        duration_ns=duration,
        wait_ns=wait,
        cpu_used_ns=used,
        ipi_rate_per_vcpu=ipi_rate,
        vcpu_trace=trace,
    )
