"""Regenerate the paper's tables and figures from the command line.

The pytest benchmarks under ``benchmarks/`` are the canonical harness
(they also assert shapes); this runner is the convenience front-end for
producing the result text without pytest::

    python -m repro.experiments.runner --list
    python -m repro.experiments.runner table1 fig5
    python -m repro.experiments.runner --all --scale 0.3 --jobs 4 --out results/

Each experiment writes its rendered table/series to stdout and, with
``--out``, to ``<out>/<name>.txt`` (plus ``<name>.json`` and a
``telemetry.json``).  Every experiment runs through the parallel
executor (``repro.parallel``): grid experiments fan their cells out over
``--jobs`` worker processes, and finished cells are memoized in a
content-addressed on-disk cache (disable with ``--no-cache``), so
re-runs skip already-computed cells.  The simulator is seeded and
bit-for-bit deterministic, so stdout is byte-identical regardless of
``--jobs`` or cache state; per-cell timings and the cache hit/miss
summary go to stderr.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Callable

from repro.parallel import (
    CellSpec,
    ParallelExecutor,
    ResultCache,
    default_cache_dir,
)


def _single(executor: ParallelExecutor, name: str, fn, **kwargs):
    """Run a non-grid experiment as one cached cell."""
    return executor.run_cell(CellSpec(name, name, fn, kwargs))


def _table1(scale: float, executor: ParallelExecutor):
    from repro.experiments import table1

    return _single(
        executor, "table1", table1.run, iterations=max(1000, int(1_000_000 * scale))
    )


def _fig4(scale: float, executor: ParallelExecutor):
    from repro.experiments import fig4

    return _single(executor, "fig4", fig4.run, iterations=max(200, int(10_000 * scale)))


def _table2(scale: float, executor: ParallelExecutor):
    from repro.experiments import table2

    return _single(executor, "table2", table2.run)


def _table3(scale: float, executor: ParallelExecutor):
    from repro.experiments import table3

    return _single(
        executor, "table3", table3.run, iterations=max(20, int(200 * scale))
    )


def _fig5(scale: float, executor: ParallelExecutor):
    from repro.experiments import fig5

    return _single(executor, "fig5", fig5.run, cycles=max(20, int(100 * scale)))


def _fig6(scale: float, executor: ParallelExecutor, scheduler: str | None = None):
    from repro.experiments import fig6_7

    return fig6_7.run(
        vcpus=4, work_scale=scale, scheduler=scheduler, executor=executor
    )


def _fig7(scale: float, executor: ParallelExecutor, scheduler: str | None = None):
    from repro.experiments import fig6_7
    from repro.experiments.setups import Config
    from repro.workloads.openmp import SPINCOUNT_ACTIVE

    return fig6_7.run(
        vcpus=8,
        spincounts=(SPINCOUNT_ACTIVE,),
        configs=[Config.VANILLA, Config.VSCALE],
        work_scale=scale,
        scheduler=scheduler,
        executor=executor,
    )


def _fig8(scale: float, executor: ParallelExecutor):
    from repro.experiments import fig8

    specs = [
        CellSpec("fig8", f"{vcpus}v", fig8.run, dict(vcpus=vcpus, work_scale=scale))
        for vcpus in (4, 8)
    ]
    return executor.run_cells(specs)


def _fig9(scale: float, executor: ParallelExecutor):
    from repro.experiments import fig9

    return fig9.run(work_scale=scale, executor=executor)


def _fig10(scale: float, executor: ParallelExecutor):
    from repro.experiments import fig10

    return fig10.run(work_scale=scale, executor=executor)


def _fig11(scale: float, executor: ParallelExecutor):
    from repro.experiments import fig11_13

    return fig11_13.run(vcpus=4, work_scale=scale, executor=executor)


def _fig12(scale: float, executor: ParallelExecutor):
    from repro.experiments import fig11_13
    from repro.experiments.setups import Config

    return fig11_13.run(
        vcpus=8,
        configs=[Config.VANILLA, Config.VSCALE],
        work_scale=scale,
        executor=executor,
    )


def _fig13(scale: float, executor: ParallelExecutor):
    from repro.experiments import fig11_13

    return fig11_13.run_fig13(vcpus=4, work_scale=scale, executor=executor)


def _fig14(scale: float, executor: ParallelExecutor):
    from repro.experiments import fig14
    from repro.units import SEC

    duration = max(1, round(3 * scale)) * SEC
    return _single(executor, "fig14", fig14.run, duration_ns=duration)


def _variance(scale: float, executor: ParallelExecutor):
    from repro.experiments import variance

    return variance.run(work_scale=scale, executor=executor)


def _ablations(scale: float, executor: ParallelExecutor):
    from repro.experiments import ablations

    return ablations.run_all(work_scale=max(0.05, 0.5 * scale), executor=executor)


def _faults(scale: float, executor: ParallelExecutor, scheduler: str | None = None):
    from repro.experiments import faults

    return faults.run(work_scale=scale, scheduler=scheduler, executor=executor)


def _chaos(scale: float, executor: ParallelExecutor, scheduler: str | None = None):
    from repro.experiments import chaos

    return chaos.run(work_scale=scale, scheduler=scheduler, executor=executor)


def _generality(scale: float, executor: ParallelExecutor, scheduler: str | None = None):
    from repro.experiments import generality

    schedulers = (scheduler,) if scheduler is not None else None
    return generality.run(
        schedulers=schedulers, work_scale=scale, executor=executor
    )


#: name -> (description, fn(scale, executor) -> result object(s)).  The
#: functions return renderable result objects (or lists of them), never
#: pre-rendered strings.
EXPERIMENTS: dict[str, tuple[str, Callable[[float, ParallelExecutor], object]]] = {
    "table1": ("vScale channel read overhead", _table1),
    "fig4": ("dom0/libxl monitoring cost", _fig4),
    "table2": ("frozen-vCPU interrupt quiescence", _table2),
    "table3": ("freeze cost breakdown", _table3),
    "fig5": ("CPU hotplug latency CDFs", _fig5),
    "fig6": ("NPB normalized times, 4-vCPU VM", _fig6),
    "fig7": ("NPB normalized times, 8-vCPU VM", _fig7),
    "fig8": ("active-vCPU traces (bt)", _fig8),
    "fig9": ("waiting-time reduction", _fig9),
    "fig10": ("NPB vIPI rates", _fig10),
    "fig11": ("PARSEC normalized times, 4-vCPU VM", _fig11),
    "fig12": ("PARSEC normalized times, 8-vCPU VM", _fig12),
    "fig13": ("PARSEC vIPI rates (vanilla)", _fig13),
    "fig14": ("Apache under httperf", _fig14),
    "variance": ("seed-variance error bars (cg)", _variance),
    "ablations": ("design-choice ablations", _ablations),
    "faults": ("fault-rate x workload robustness matrix", _faults),
    "chaos": ("crash-stop faults and recovery protocols", _chaos),
    "generality": ("scheduler-zoo n_i = ceil(s_ext/t) grid", _generality),
}

#: Experiments whose grids accept a ``--scheduler`` override.  The rest
#: always run on the default scheduler (their goldens pin its behavior).
SCHEDULER_AWARE = {"fig6", "fig7", "faults", "chaos", "generality"}


def build_executor(args: argparse.Namespace) -> ParallelExecutor:
    cache = None
    if not args.no_cache:
        cache = ResultCache(args.cache_dir or default_cache_dir())
    return ParallelExecutor(
        jobs=args.jobs, cache=cache, trace_dir=getattr(args, "trace_dir", None)
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.experiments.runner", description=__doc__
    )
    parser.add_argument("names", nargs="*", help="experiments to run")
    parser.add_argument("--all", action="store_true", help="run everything")
    parser.add_argument("--list", action="store_true", help="list experiments")
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="work scale factor (0 < scale <= 1 shrinks runs)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes for grid cells (default: REPRO_JOBS or CPU count)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="recompute every cell; do not read or write the result cache",
    )
    parser.add_argument(
        "--cache-dir",
        type=Path,
        default=None,
        help="result cache location (default: REPRO_CACHE_DIR or "
        "~/.cache/repro-vscale)",
    )
    parser.add_argument("--out", type=Path, default=None, help="output directory")
    parser.add_argument(
        "--trace-dir",
        type=Path,
        default=None,
        help="stream a binary trace per cell to this directory "
        "(forces re-execution: cached results produce no trace)",
    )
    parser.add_argument(
        "--scheduler",
        default=None,
        help="pool scheduler for scheduler-aware grids "
        f"({', '.join(sorted(SCHEDULER_AWARE))})",
    )
    args = parser.parse_args(argv)

    if args.list:
        for name, (description, _) in EXPERIMENTS.items():
            print(f"{name:9s} {description}")
        return 0

    names = list(EXPERIMENTS) if args.all else args.names
    if not names:
        parser.error("no experiments given (use --all or --list)")
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiments: {unknown}")
    if args.scale <= 0:
        parser.error("--scale must be positive")
    if args.jobs is not None and args.jobs < 1:
        parser.error("--jobs must be at least 1")
    if args.scheduler is not None:
        from repro.hypervisor.schedulers import available

        if args.scheduler not in available():
            parser.error(
                f"unknown scheduler {args.scheduler!r} "
                f"(available: {', '.join(available())})"
            )
        unaware = [n for n in names if n not in SCHEDULER_AWARE]
        if unaware:
            parser.error(
                f"--scheduler does not apply to: {', '.join(unaware)} "
                f"(scheduler-aware: {', '.join(sorted(SCHEDULER_AWARE))})"
            )

    executor = build_executor(args)
    telemetry = executor.telemetry
    if args.out is not None:
        args.out.mkdir(parents=True, exist_ok=True)
    for name in names:
        description, fn = EXPERIMENTS[name]
        print(f"=== {name}: {description}", flush=True)
        mark = telemetry.mark()
        if name in SCHEDULER_AWARE:
            outcome = fn(args.scale, executor, args.scheduler)
        else:
            outcome = fn(args.scale, executor)
        parts = outcome if isinstance(outcome, list) else [outcome]
        text = "\n\n".join(part.render() for part in parts)
        print(text)
        print(flush=True)
        cell_lines = telemetry.render_cells(since=mark)
        if cell_lines:
            print(cell_lines, file=sys.stderr)
        print(
            f"--- {name} done in {telemetry.executed_seconds(since=mark):.1f}s",
            file=sys.stderr,
            flush=True,
        )
        if args.out is not None:
            (args.out / f"{name}.txt").write_text(text + "\n")
            from repro.experiments import results as results_mod

            payload = (
                [results_mod.to_dict(part, name) for part in parts]
                if len(parts) > 1
                else results_mod.to_dict(parts[0], name)
            )
            (args.out / f"{name}.json").write_text(
                json.dumps(payload, indent=2, sort_keys=True) + "\n"
            )
    print(telemetry.summary(), file=sys.stderr, flush=True)
    if args.out is not None:
        (args.out / "telemetry.json").write_text(
            json.dumps(telemetry.to_dict(), indent=2, sort_keys=True) + "\n"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
