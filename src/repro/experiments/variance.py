"""Seed-variance analysis for the application experiments.

The consolidated-host experiments are chaotic: the vanilla baseline's
runtime swings by around 2x across seeds because straggler amplification
compounds small scheduling differences.  Single-seed numbers are therefore
honest only with an error bar.  This module reruns one experiment cell
across several seeds and reports the distribution of the vScale reduction,
which the paper approximates by averaging three runs.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field

from repro.experiments.npb_common import run_cell
from repro.experiments.setups import Config
from repro.metrics.report import Table
from repro.parallel import CellSpec, ParallelExecutor, get_default_executor


@dataclass
class VarianceResult:
    app: str
    spincount: int
    seeds: list[int]
    #: seed -> (vanilla_ns, vscale_ns)
    durations: dict[int, tuple[int, int]] = field(default_factory=dict)

    @property
    def reductions(self) -> list[float]:
        return [
            1.0 - vscale / vanilla
            for vanilla, vscale in self.durations.values()
        ]

    @property
    def mean_reduction(self) -> float:
        return statistics.mean(self.reductions)

    @property
    def spread(self) -> float:
        """Half the range of reductions — a crude but honest error bar."""
        reductions = self.reductions
        return (max(reductions) - min(reductions)) / 2

    @property
    def always_wins(self) -> bool:
        return all(reduction > 0 for reduction in self.reductions)

    def render(self) -> str:
        table = Table(
            f"Seed variance: NPB {self.app} (spincount={self.spincount})",
            ["seed", "vanilla (s)", "vScale (s)", "reduction"],
        )
        for seed, (vanilla, vscale) in self.durations.items():
            table.add_row(
                seed,
                vanilla / 1e9,
                vscale / 1e9,
                f"{(1 - vscale / vanilla) * 100:+.0f}%",
            )
        lines = [table.render()]
        lines.append(
            f"mean reduction {self.mean_reduction * 100:+.0f}% "
            f"(+- {self.spread * 100:.0f}% across seeds)"
        )
        return "\n".join(lines)


def cells(
    app: str = "cg",
    spincount: int = 30_000_000_000,
    seeds: tuple[int, ...] = (3, 4, 5),
    vcpus: int = 4,
    work_scale: float = 1.0,
) -> list[CellSpec]:
    return [
        CellSpec(
            experiment="variance",
            name=f"{app}/seed={seed}/{config.value}",
            fn=run_cell,
            kwargs=dict(
                app_name=app,
                vcpus=vcpus,
                spincount=spincount,
                config=config,
                seed=seed,
                work_scale=work_scale,
            ),
        )
        for seed in seeds
        for config in (Config.VANILLA, Config.VSCALE)
    ]


def run(
    app: str = "cg",
    spincount: int = 30_000_000_000,
    seeds: tuple[int, ...] = (3, 4, 5),
    vcpus: int = 4,
    work_scale: float = 1.0,
    executor: ParallelExecutor | None = None,
) -> VarianceResult:
    """Run (vanilla, vScale) for each seed and collect the distribution."""
    if len(seeds) < 2:
        raise ValueError("variance needs at least two seeds")
    if executor is None:
        executor = get_default_executor()
    result = VarianceResult(app=app, spincount=spincount, seeds=list(seeds))
    specs = cells(app, spincount, seeds, vcpus, work_scale)
    outcomes = executor.run_cells(specs)
    for index, seed in enumerate(seeds):
        vanilla, vscale = outcomes[2 * index], outcomes[2 * index + 1]
        result.durations[seed] = (vanilla.duration_ns, vscale.duration_ns)
    return result
