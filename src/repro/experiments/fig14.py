"""Figure 14: Apache web server performance under httperf load.

A 4-vCPU VM serves a 16 KB file over a 1 GbE link; a client machine drives
it at constant request rates from 1 K to 10 K per second.  Three panels:

* (a) average reply rate — vanilla peaks early and then degrades, pvlock
  avoids the break but peaks below link saturation, vScale approaches it;
* (b) average connection time — dominated by how fast the VM responds to
  the NIC's event-channel interrupt;
* (c) average response time — adds worker wake-up (IPI) latency and
  processing on top.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.setups import ALL_CONFIGS, Config, ScenarioBuilder
from repro.metrics.report import Table
from repro.sim.rng import SeedSequenceFactory
from repro.units import SEC
from repro.workloads.apache import ApacheServer, HttperfClient, HttperfResult

WARMUP_NS = 2 * SEC

#: Request rates on the paper's x axis (per second).
DEFAULT_RATES = [1000, 2000, 3000, 4000, 5000, 6000, 7000, 8000, 9000, 10000]


@dataclass
class Fig14Result:
    #: (config, rate) -> client measurements.
    points: dict[tuple[Config, int], HttperfResult] = field(default_factory=dict)

    def reply_rate(self, config: Config, rate: int) -> float:
        return self.points[(config, rate)].reply_rate

    def peak_reply_rate(self, config: Config) -> float:
        return max(
            result.reply_rate
            for (cfg, _), result in self.points.items()
            if cfg is config
        )

    def mean_connection_ms(self, config: Config, rate: int) -> float:
        reservoir = self.points[(config, rate)].connection_time
        return reservoir.mean() / 1e6 if len(reservoir) else float("nan")

    def mean_response_ms(self, config: Config, rate: int) -> float:
        reservoir = self.points[(config, rate)].response_time
        return reservoir.mean() / 1e6 if len(reservoir) else float("nan")

    def render(self) -> str:
        table = Table(
            "Figure 14: Apache under httperf (4-vCPU VM, 16KB file, 1GbE)",
            ["config", "req/s", "reply/s", "conn (ms)", "resp (ms)", "drops"],
        )
        for (config, rate), result in sorted(
            self.points.items(), key=lambda kv: (kv[0][0].value, kv[0][1])
        ):
            table.add_row(
                config.value,
                rate,
                f"{result.reply_rate:.0f}",
                self.mean_connection_ms(config, rate),
                self.mean_response_ms(config, rate),
                result.drops,
            )
        return table.render()


def run_point(
    config: Config,
    rate_per_s: int,
    duration_ns: int = 3 * SEC,
    seed: int = 3,
) -> HttperfResult:
    """One (configuration, request-rate) measurement."""
    builder = ScenarioBuilder(seed=seed).with_worker_vm(4).with_config(config)
    scenario = builder.build()
    seeds = SeedSequenceFactory(seed)
    server = ApacheServer(
        scenario.worker_kernel,
        rng=seeds.stream("apache", "normal"),
        kernel_lock=scenario.worker_kernel_lock,
    )
    client = HttperfClient(server, rng=seeds.generator("httperf"))
    scenario.start()
    scenario.run(WARMUP_NS)
    client.start(rate_per_s, duration_ns)
    # Run past the end so in-flight requests drain.
    scenario.run(scenario.machine.sim.now + duration_ns + SEC // 2)
    return client.collect()


def run(
    rates: list[int] | None = None,
    configs: list[Config] | None = None,
    duration_ns: int = 3 * SEC,
    seed: int = 3,
) -> Fig14Result:
    result = Fig14Result()
    for config in configs or ALL_CONFIGS:
        for rate in rates or DEFAULT_RATES:
            result.points[(config, rate)] = run_point(config, rate, duration_ns, seed)
    return result
