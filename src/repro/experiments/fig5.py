"""Figure 5: CDFs of Linux CPU hotplug/unhotplug latency, four kernels.

The paper adds and removes vCPU3 one hundred times on each of four guest
kernel versions (2.6.32, 3.2.60, 3.14.15, 4.2) and plots latency CDFs:
removal ranges from a few ms to over 100 ms everywhere; addition is
350-500 us at best (3.14.15) and tens of ms on the other kernels —
100x-100,000x slower than vScale's microsecond freeze.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.guest.hotplug import HotplugModel, KERNEL_VERSIONS
from repro.metrics.collectors import LatencyReservoir
from repro.metrics.report import Table
from repro.sim.rng import SeedSequenceFactory


@dataclass
class Fig5Result:
    #: version -> reservoirs of add/remove latencies (ns).
    add: dict[str, LatencyReservoir] = field(default_factory=dict)
    remove: dict[str, LatencyReservoir] = field(default_factory=dict)

    def render(self) -> str:
        table = Table(
            "Figure 5: CPU hotplug latency percentiles (ms)",
            ["kernel", "direction", "p10", "p50", "p90", "max"],
        )
        for version in self.add:
            for direction, reservoir in (
                ("add", self.add[version]),
                ("remove", self.remove[version]),
            ):
                table.add_row(
                    version,
                    direction,
                    reservoir.percentile(0.10) / 1e6,
                    reservoir.percentile(0.50) / 1e6,
                    reservoir.percentile(0.90) / 1e6,
                    reservoir.max() / 1e6,
                )
        return table.render()

    def cdf(self, version: str, direction: str) -> list[tuple[int, float]]:
        reservoir = self.add[version] if direction == "add" else self.remove[version]
        return reservoir.cdf()


def run(cycles: int = 100, seed: int = 1) -> Fig5Result:
    seeds = SeedSequenceFactory(seed)
    result = Fig5Result()
    for version in KERNEL_VERSIONS:
        model = HotplugModel(version, seeds.generator(f"hotplug.{version}"))
        add = LatencyReservoir()
        remove = LatencyReservoir()
        for _ in range(cycles):
            remove.record(model.sample_remove_ns())
            add.record(model.sample_add_ns())
        result.add[version] = add
        result.remove[version] = remove
    return result
