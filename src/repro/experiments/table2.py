"""Table 2: interrupt quiescence of a frozen vCPU.

A 4-vCPU VM runs a parallel kernel build; vCPU3 is frozen at runtime with
the vScale balancer.  The paper then reads /proc/interrupts: every active
vCPU keeps receiving ~1000 timer interrupts per second (1000 HZ guest) and
~20-30 reschedule IPIs per second, while the frozen vCPU receives zero of
both — it is quiescent even though its interrupts were never disabled.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.balancer import VScaleBalancer
from repro.guest.kernel import GuestKernel
from repro.hypervisor.config import HostConfig
from repro.hypervisor.machine import Machine
from repro.metrics.report import Table
from repro.sim.rng import SeedSequenceFactory
from repro.units import SEC
from repro.workloads.kernel_build import KernelBuild


@dataclass
class Table2Result:
    #: Rates while all four vCPUs are active.
    timer_before: list[float]
    ipi_before: list[float]
    #: Rates after vCPU3 is frozen.
    timer_after: list[float]
    ipi_after: list[float]
    #: The raw /proc/interrupts view after the freeze (what the paper's
    #: measurement actually reads inside the guest).
    proc_interrupts: str = ""

    def render(self) -> str:
        table = Table(
            "Table 2: interrupts per vCPU per second, before/after freezing vCPU3",
            ["metric", "vCPU0", "vCPU1", "vCPU2", "vCPU3"],
        )
        table.add_row("vTimer INTs/s (all active)", *[f"{x:.0f}" for x in self.timer_before])
        table.add_row("vTimer INTs/s (v3 frozen)", *[f"{x:.0f}" for x in self.timer_after])
        table.add_row("vIPIs/s (all active)", *[f"{x:.1f}" for x in self.ipi_before])
        table.add_row("vIPIs/s (v3 frozen)", *[f"{x:.1f}" for x in self.ipi_after])
        return table.render()


def run(seed: int = 1, window_ns: int = 4 * SEC) -> Table2Result:
    """Run kernel-build, sample interrupt rates, freeze vCPU3, resample."""
    machine = Machine(HostConfig(pcpus=4), seed=seed)
    domain = machine.create_domain("builder", vcpus=4)
    kernel = GuestKernel(domain)
    seeds = SeedSequenceFactory(seed)
    build = KernelBuild(kernel, seeds.stream("kbuild", "normal"), jobs=8)
    build.install()
    machine.start()
    # Warm-up so the job pipeline fills.
    machine.run(until=1 * SEC)

    def snapshot():
        kernel.sync_ticks()
        timers = [int(c) for c in kernel.timer_interrupts]
        ipis = [int(v.ipi_received) for v in domain.vcpus]
        return timers, ipis

    t0, i0 = snapshot()
    machine.run(until=machine.sim.now + window_ns)
    t1, i1 = snapshot()
    timer_before = [(b - a) * 1e9 / window_ns for a, b in zip(t0, t1)]
    ipi_before = [(b - a) * 1e9 / window_ns for a, b in zip(i0, i1)]

    balancer = VScaleBalancer(kernel)
    balancer.freeze(3)
    # Let the freeze complete and rates settle.
    machine.run(until=machine.sim.now + SEC // 2)
    t2, i2 = snapshot()
    machine.run(until=machine.sim.now + window_ns)
    t3, i3 = snapshot()
    timer_after = [(b - a) * 1e9 / window_ns for a, b in zip(t2, t3)]
    ipi_after = [(b - a) * 1e9 / window_ns for a, b in zip(i2, i3)]

    from repro.guest import procfs

    return Table2Result(
        timer_before=timer_before,
        ipi_before=ipi_before,
        timer_after=timer_after,
        ipi_after=ipi_after,
        proc_interrupts=procfs.proc_interrupts(kernel),
    )
