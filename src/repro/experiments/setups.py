"""Shared experiment scaffolding.

The application experiments (Figures 6-13) all use the paper's setup: a
worker SMP-VM under test, consolidated with "photo-slideshow" desktop VMs
at an average of two vCPUs per pCPU, with weights configured so every vCPU
is treated equally by the hypervisor, compared across four configurations:

* ``VANILLA``        — stock Xen/Linux;
* ``PVLOCK``         — stock + paravirtual spinlocks in the guest;
* ``VSCALE``         — vScale daemon + balancer + scheduler extension;
* ``VSCALE_PVLOCK``  — both.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.core.daemon import DaemonConfig, VScaleDaemon
from repro.faults import FaultPlan
from repro.guest.kernel import GuestConfig, GuestKernel
from repro.guest.sync import KernelSpinLock
from repro.hypervisor.config import HostConfig
from repro.hypervisor.domain import Domain
from repro.hypervisor.machine import Machine
from repro.recovery.watchdog import HangWatchdog
from repro.sim.rng import SeedSequenceFactory
from repro.units import MS, SEC
from repro.workloads.desktop import PhotoSlideshow, SlideshowConfig


class Config(enum.Enum):
    """The four compared configurations."""

    VANILLA = "Xen/Linux"
    PVLOCK = "Xen/Linux + pvlock"
    VSCALE = "vScale"
    VSCALE_PVLOCK = "vScale + pvlock"

    @property
    def uses_vscale(self) -> bool:
        return self in (Config.VSCALE, Config.VSCALE_PVLOCK)

    @property
    def uses_pvlock(self) -> bool:
        return self in (Config.PVLOCK, Config.VSCALE_PVLOCK)


ALL_CONFIGS = [Config.VANILLA, Config.VSCALE, Config.PVLOCK, Config.VSCALE_PVLOCK]


@dataclass
class Scenario:
    """A fully built host ready to run."""

    machine: Machine
    worker_domain: Domain
    worker_kernel: GuestKernel
    #: The shared futex-bucket/socket kernel lock of the worker guest.
    worker_kernel_lock: KernelSpinLock
    daemon: VScaleDaemon | None
    background: list[PhotoSlideshow] = field(default_factory=list)
    config: Config = Config.VANILLA
    #: Hang watchdog on the worker guest, when requested (chaos runs).
    watchdog: HangWatchdog | None = None

    def start(self) -> None:
        self.machine.start()

    def run(self, until_ns: int) -> None:
        self.machine.run(until=until_ns)


class ScenarioBuilder:
    """Builds the consolidated-host scenario of the application sections."""

    def __init__(self, seed: int = 1, pcpus: int = 8, scheduler: str | None = None):
        self.seed = seed
        self.pcpus = pcpus
        #: Pool scheduler by registry name; None defers to REPRO_SCHEDULER
        #: and then to the credit default (see repro.hypervisor.schedulers).
        self.scheduler = scheduler
        self.worker_vcpus = 4
        self.background_vms: int | None = None
        self.config = Config.VANILLA
        self.daemon_config: DaemonConfig | None = None
        self.slideshow_config: SlideshowConfig | None = None
        self.fault_plan: FaultPlan | None = None
        self.install_watchdog = False
        self.consolidation = 2.0  # average vCPUs per pCPU

    # -- fluent knobs ---------------------------------------------------
    def with_worker_vm(self, vcpus: int) -> "ScenarioBuilder":
        self.worker_vcpus = vcpus
        return self

    def with_background_vms(self, count: int) -> "ScenarioBuilder":
        self.background_vms = count
        return self

    def with_config(self, config: Config) -> "ScenarioBuilder":
        self.config = config
        return self

    def with_scheduler(self, name: str | None) -> "ScenarioBuilder":
        self.scheduler = name
        return self

    def with_consolidation(self, ratio: float) -> "ScenarioBuilder":
        self.consolidation = ratio
        return self

    def with_faults(self, plan: FaultPlan | None) -> "ScenarioBuilder":
        self.fault_plan = plan
        return self

    def with_watchdog(self, install: bool = True) -> "ScenarioBuilder":
        """Install a :class:`HangWatchdog` on the worker guest, which also
        injects the plan's scripted ``vcpu_hang`` faults."""
        self.install_watchdog = install
        return self

    # -- build -----------------------------------------------------------
    def _background_count(self) -> int:
        if self.background_vms is not None:
            return self.background_vms
        total_vcpus = self.consolidation * self.pcpus
        count = round((total_vcpus - self.worker_vcpus) / 2)
        return max(1, count)

    def build(self) -> Scenario:
        seeds = SeedSequenceFactory(self.seed)
        host = HostConfig(pcpus=self.pcpus, scheduler=self.scheduler)
        machine = Machine(host, seed=self.seed)
        if self.fault_plan is not None and self.fault_plan.active:
            machine.install_faults(self.fault_plan)

        # Weights: "so that all vCPUs are treated equally" — per-VM weight
        # proportional to the provisioned vCPU count.
        worker_domain = machine.create_domain(
            "worker", vcpus=self.worker_vcpus, weight=128 * self.worker_vcpus
        )
        guest_config = GuestConfig(pv_spinlock=self.config.uses_pvlock)
        worker_kernel = GuestKernel(worker_domain, guest_config)
        worker_lock = KernelSpinLock(worker_kernel, "worker.futex_bucket")

        background = []
        for index in range(self._background_count()):
            bg_domain = machine.create_domain(
                f"desktop{index}", vcpus=2, weight=128 * 2
            )
            bg_kernel = GuestKernel(bg_domain)
            slideshow = PhotoSlideshow(
                bg_kernel,
                rng=seeds.generator(f"slideshow.{index}"),
                config=self.slideshow_config,
            )
            slideshow.install()
            background.append(slideshow)

        daemon = None
        machine.install_vscale()
        if self.config.uses_vscale:
            daemon = VScaleDaemon(worker_kernel, self.daemon_config)
            daemon.install()
        watchdog = None
        if self.install_watchdog:
            watchdog = HangWatchdog(worker_kernel)
            watchdog.install()

        return Scenario(
            machine=machine,
            worker_domain=worker_domain,
            worker_kernel=worker_kernel,
            worker_kernel_lock=worker_lock,
            daemon=daemon,
            background=background,
            config=self.config,
            watchdog=watchdog,
        )


def run_until_done(scenario: Scenario, app, timeout_ns: int = 120 * SEC, step_ns: int = 100 * MS) -> int:
    """Run the machine until ``app.done``; returns the app duration (ns).

    ``app`` is any object with ``done``/``duration_ns`` (the workload
    harnesses).  Raises on timeout so calibration mistakes fail loudly
    instead of spinning forever.
    """
    machine = scenario.machine
    deadline = machine.sim.now + timeout_ns
    while not app.done:
        if machine.sim.now >= deadline:
            raise TimeoutError(
                f"workload did not finish within {timeout_ns / SEC:.1f}s of sim time"
            )
        machine.run(until=min(deadline, machine.sim.now + step_ns))
    return app.duration_ns
