"""The ``chaos`` experiment: crash-stop faults and recovery protocols.

A profile grid running one synchronization-heavy NPB app under seeded
crash schedules (:func:`repro.faults.chaos.generate_plan`):

* ``none``   — the healthy baseline every other profile is compared to;
* ``crash``  — vScale daemon crash-stops (state lost, rebuilt from the
  durable xenstore snapshot on restart);
* ``hang``   — wedged vCPUs cleared by the hang watchdog's
  freeze/unfreeze cycle;
* ``mixed``  — crashes and hangs together;
* ``outage`` — dom0 balancer outages degrading VCPU-Bal to naive
  per-domain decisions (runs the VANILLA + VCPU-Bal stack, so its
  slowdown column compares mechanism-internal degradation, not vScale).

Immediately before every scripted daemon crash the harness captures a
deterministic :class:`~repro.recovery.checkpoint.Checkpoint` — snapshots
are pure, so the run is bit-identical to never snapshotting — and the
cell reports their fingerprints alongside the recovery counters
(:class:`repro.recovery.RecoveryStats`).  The claim under test: every
crash-stop fault has a bounded, explicit recovery path, and the
machinery for proving it (checkpoint/restore) does not perturb the run.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.core.daemon import DaemonConfig
from repro.experiments.setups import Config, ScenarioBuilder, run_until_done
from repro.faults.chaos import generate_plan
from repro.metrics.report import Table
from repro.parallel import CellSpec, ParallelExecutor, get_default_executor
from repro.sim.rng import SeedSequenceFactory
from repro.units import SEC
from repro.workloads.npb import NPBApp, NPB_PROFILES
from repro.workloads.openmp import SPINCOUNT_DEFAULT

#: The fault profiles of the grid, in report order.
PROFILES = ("none", "crash", "hang", "mixed", "outage")
DEFAULT_APP = "cg"
WARMUP_NS = 2 * SEC
#: App-phase window the scripted fault instants are spread over at full
#: work scale; shrunk with ``work_scale`` so faults still land inside
#: scaled-down runs.
APP_WINDOW_NS = 4 * SEC
#: Seed of the crash schedule, independent of the workload seed.
CHAOS_SEED = 17


@dataclass
class ChaosCell:
    """One (profile) cell of the chaos grid."""

    profile: str
    app: str
    duration_ns: int
    wait_ns: int
    #: Checkpoints captured immediately before scripted daemon crashes.
    snapshots_taken: int
    #: Their SHA-256 state fingerprints, in capture order.
    snapshot_fingerprints: list[str] = field(default_factory=list)
    #: :meth:`repro.recovery.RecoveryStats.to_dict`, {} for ``none``.
    recovery: dict = field(default_factory=dict)
    #: The daemon's degradation counters, {} for the ``outage`` profile.
    daemon: dict = field(default_factory=dict)


def _build_plan(profile: str, chaos_seed: int, work_scale: float):
    window = WARMUP_NS + max(SEC, round(APP_WINDOW_NS * work_scale))
    if profile == "none":
        return None
    if profile == "crash":
        return generate_plan(chaos_seed, window, daemon_crashes=2)
    # Hang targets draw from 1..vcpus-1; vcpus=2 pins them to vCPU 1,
    # which the daemon keeps online on the consolidated host (the higher
    # indices spend most of the run frozen, leaving a hang no surface).
    if profile == "hang":
        return generate_plan(chaos_seed, window, vcpu_hangs=2, vcpus=2)
    if profile == "mixed":
        return generate_plan(
            chaos_seed, window, daemon_crashes=2, vcpu_hangs=1, vcpus=2
        )
    if profile == "outage":
        return generate_plan(chaos_seed, window, balancer_outages=2)
    raise ValueError(f"unknown chaos profile {profile!r}")


def run_chaos_cell(
    profile: str,
    app_name: str = DEFAULT_APP,
    seed: int = 3,
    work_scale: float = 1.0,
    chaos_seed: int = CHAOS_SEED,
    scheduler: str | None = None,
) -> ChaosCell:
    """Run one profile cell on the consolidated 8-pCPU host.

    The vScale-path profiles run the :meth:`DaemonConfig.crash_hardened`
    daemon (durable xenstore state) plus the hang watchdog; ``outage``
    runs VANILLA with the centralized VCPU-Bal manager, whose degraded
    mode the outage exercises.
    """
    if app_name not in NPB_PROFILES:
        raise KeyError(f"unknown NPB app {app_name!r}")
    if profile not in PROFILES:
        raise ValueError(f"unknown chaos profile {profile!r}")
    seeds = SeedSequenceFactory(seed)
    plan = _build_plan(profile, chaos_seed, work_scale)

    manager = None
    if profile == "outage":
        from repro.core.baselines import VCPUBalManager
        from repro.guest.hotplug import HotplugModel
        from repro.hypervisor.dom0 import Dom0Load, Dom0Toolstack

        scenario = (
            ScenarioBuilder(seed=seed, pcpus=8)
            .with_worker_vm(4)
            .with_config(Config.VANILLA)
            .with_scheduler(scheduler)
            .with_faults(plan)
            .build()
        )
        dom0 = Dom0Toolstack(seeds.generator("dom0"), load=Dom0Load.IDLE)
        model = HotplugModel("v3.14.15", seeds.generator("hp"))
        manager = VCPUBalManager(scenario.worker_kernel, dom0, model)
        manager.install()
    else:
        builder = (
            ScenarioBuilder(seed=seed, pcpus=8)
            .with_worker_vm(4)
            .with_config(Config.VSCALE)
            .with_scheduler(scheduler)
            .with_faults(plan)
            .with_watchdog(profile in ("hang", "mixed"))
        )
        builder.daemon_config = DaemonConfig.crash_hardened()
        scenario = builder.build()

    # Snapshot immediately before every scripted daemon crash: snapshots
    # are pure, so these events leave the run bit-identical.
    machine = scenario.machine
    checkpoints: list = []
    if plan is not None:
        for event in plan.events:
            if event.site == "daemon_crash":
                machine.sim.schedule_at(
                    event.at_ns, lambda: checkpoints.append(machine.snapshot())
                )

    scenario.start()
    scenario.run(WARMUP_NS)

    npb_profile = NPB_PROFILES[app_name]
    if work_scale != 1.0:
        npb_profile = replace(
            npb_profile, iterations=max(2, round(npb_profile.iterations * work_scale))
        )
    domain = scenario.worker_domain
    wait0 = domain.total_wait_ns(machine.sim.now)
    app = NPBApp(
        scenario.worker_kernel,
        npb_profile,
        SPINCOUNT_DEFAULT,
        seeds.stream("npb", "normal"),
        kernel_lock=scenario.worker_kernel_lock,
    )
    app.launch()
    duration = run_until_done(scenario, app)
    wait = domain.total_wait_ns(machine.sim.now) - wait0

    stats = scenario.daemon.stats if scenario.daemon is not None else None
    return ChaosCell(
        profile=profile,
        app=app_name,
        duration_ns=duration,
        wait_ns=wait,
        snapshots_taken=len(checkpoints),
        snapshot_fingerprints=[c.fingerprint for c in checkpoints],
        recovery=(
            machine.faults.recovery.to_dict() if machine.faults is not None else {}
        ),
        daemon=stats.to_dict() if stats else {},
    )


@dataclass
class ChaosResult:
    """The assembled chaos grid."""

    #: profile -> cell
    cells: dict = field(default_factory=dict)

    def slowdown(self, profile: str) -> float:
        """Duration relative to the healthy ``none`` baseline."""
        base = self.cells["none"].duration_ns if "none" in self.cells else None
        if not base:
            return 1.0
        return self.cells[profile].duration_ns / base

    def render(self) -> str:
        table = Table(
            "Chaos grid: crash-stop faults and recovery",
            [
                "profile", "time (s)", "slowdown", "crashes", "restores",
                "hangs", "clears", "outages", "resyncs", "rec epochs",
                "snapshots",
            ],
        )
        for profile in PROFILES:
            if profile not in self.cells:
                continue
            cell = self.cells[profile]
            rec = cell.recovery
            epochs = (
                rec.get("recovery_epochs_total", 0) / rec.get("recoveries", 1)
                if rec.get("recoveries")
                else 0.0
            )
            table.add_row(
                profile,
                cell.duration_ns / 1e9,
                self.slowdown(profile),
                rec.get("daemon_crashes", 0),
                rec.get("state_restores", 0),
                rec.get("hangs_injected", 0),
                rec.get("watchdog_clears", 0),
                rec.get("balancer_outages", 0),
                rec.get("balancer_resyncs", 0),
                epochs,
                cell.snapshots_taken,
            )
        return table.render()


def cells(
    profiles: tuple[str, ...] = PROFILES,
    app_name: str = DEFAULT_APP,
    seed: int = 3,
    work_scale: float = 1.0,
    chaos_seed: int = CHAOS_SEED,
    scheduler: str | None = None,
) -> list[CellSpec]:
    """Decompose the chaos grid into independent cells."""
    specs = []
    for profile in profiles:
        name = f"{app_name}/{profile}"
        kwargs = dict(
            profile=profile,
            app_name=app_name,
            seed=seed,
            work_scale=work_scale,
            chaos_seed=chaos_seed,
        )
        if scheduler is not None:
            name += f"/sched={scheduler}"
            kwargs["scheduler"] = scheduler
        specs.append(
            CellSpec(experiment="chaos", name=name, fn=run_chaos_cell, kwargs=kwargs)
        )
    return specs


def run(
    profiles: tuple[str, ...] = PROFILES,
    app_name: str = DEFAULT_APP,
    seed: int = 3,
    work_scale: float = 1.0,
    chaos_seed: int = CHAOS_SEED,
    scheduler: str | None = None,
    executor: ParallelExecutor | None = None,
) -> ChaosResult:
    """Run the chaos grid on the parallel executor."""
    if executor is None:
        executor = get_default_executor()
    result = ChaosResult()
    specs = cells(profiles, app_name, seed, work_scale, chaos_seed, scheduler)
    for cell in executor.run_cells(specs):
        result.cells[cell.profile] = cell
    return result
