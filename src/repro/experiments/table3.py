"""Table 3: the cost breakdown of freezing one vCPU.

The paper instruments ``sys_freezecpu`` with early returns from successive
depths and reports, per master-vCPU step, the cumulative cost (2.10 us
total), plus the target-side costs: ~1 us per migrated thread and ~1 us to
re-bind device interrupts.

We report the same rows two ways: the Monte-Carlo step breakdown from the
cost model, and a *live* measurement — freeze/unfreeze cycles against a
running guest, with the per-thread migration cost inferred from the
simulation's actual migration work.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.balancer import BalancerCosts, VScaleBalancer
from repro.guest.actions import Compute
from repro.guest.kernel import GuestKernel
from repro.hypervisor.config import HostConfig
from repro.hypervisor.domain import VCPUState
from repro.hypervisor.machine import Machine
from repro.metrics.report import Table
from repro.units import MS, SEC


@dataclass
class Table3Result:
    #: (label, step mean us, cumulative us) rows for the master vCPU.
    breakdown: list[tuple[str, float, float]]
    #: Mean master-side cost over the live freeze/unfreeze cycles (us).
    live_master_us: float
    #: Mean observed freeze-to-quiescent latency (us) with N threads.
    live_freeze_latency_us: float
    threads_on_target: int
    migration_cost_us: float

    def render(self) -> str:
        table = Table(
            "Table 3: overhead of freezing one vCPU (master side)",
            ["operation", "step (us)", "cumulative (us)"],
        )
        for label, step, cumulative in self.breakdown:
            table.add_row(label, step, cumulative)
        table.add_row("-- live master-side mean --", "", f"{self.live_master_us:.2f}")
        table.add_row(
            f"-- target side: migrate {self.threads_on_target} threads --",
            "",
            f"{self.live_freeze_latency_us:.2f}",
        )
        table.add_row("-- per-thread migration --", "", f"{self.migration_cost_us:.2f}")
        return table.render()


def _spinner(total_ns: int):
    yield Compute(total_ns)


def run(iterations: int = 200, threads: int = 4, seed: int = 1) -> Table3Result:
    """Monte-Carlo the breakdown and measure live freeze cycles."""
    costs = BalancerCosts()
    machine = Machine(HostConfig(pcpus=4), seed=seed)
    domain = machine.create_domain("probe", vcpus=2)
    kernel = GuestKernel(domain)
    # Pin busy threads to vCPU1 so each freeze migrates exactly `threads`.
    for index in range(threads):
        kernel.spawn(_spinner(30 * SEC), f"busy{index}", pinned_to=1)
    machine.start()
    machine.run(until=100 * MS)

    balancer = VScaleBalancer(kernel, costs=costs)
    breakdown = balancer.measure_master_breakdown(iterations)

    freeze_latencies = []
    vcpu1 = domain.vcpus[1]
    for _ in range(iterations):
        start = machine.sim.now
        # Unpin before freeze so the threads are migratable, re-pin after.
        for thread in kernel.threads:
            thread.pinned_to = None
        # Unpinning creates steal candidates, which can shorten the
        # macro-step horizons of sibling vCPUs' quiescent regions.
        kernel._macro_refresh()
        balancer.freeze(1)
        deadline = machine.sim.now + 50 * MS
        while vcpu1.state is not VCPUState.FROZEN and machine.sim.now < deadline:
            machine.run(until=machine.sim.now + 2_000)
        if vcpu1.state is not VCPUState.FROZEN:
            raise RuntimeError("freeze did not complete within 50 ms")
        freeze_latencies.append(machine.sim.now - start)
        balancer.unfreeze(1)
        machine.run(until=machine.sim.now + 5 * MS)
        # Push the threads back so the next cycle migrates them again.
        for thread in kernel.threads:
            if not thread.done:
                kernel.repin_thread(thread, 1)
        machine.run(until=machine.sim.now + 20 * MS)

    live_master_us = balancer.master_latency.mean() / 1000.0
    live_freeze_us = sum(freeze_latencies) / len(freeze_latencies) / 1000.0
    return Table3Result(
        breakdown=breakdown,
        live_master_us=live_master_us,
        live_freeze_latency_us=live_freeze_us,
        threads_on_target=threads,
        migration_cost_us=kernel.config.migration_cost_ns / 1000.0,
    )
