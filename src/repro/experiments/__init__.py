"""Experiment harnesses: one module per table/figure of the paper.

Every harness builds its scenario through :mod:`repro.experiments.setups`,
runs the simulation, and returns plain result rows that the corresponding
benchmark under ``benchmarks/`` prints and sanity-checks.

Index (see DESIGN.md for the full mapping):

========  ==========================================================
module    reproduces
========  ==========================================================
table1    vScale-channel read cost breakdown
fig4      dom0/libxl monitoring cost vs #VMs and dom0 I/O load
table2    interrupt quiescence of a frozen vCPU
table3    freeze-operation cost breakdown
fig5      CPU-hotplug latency CDFs across kernel versions
fig6_7    NPB-OMP normalized execution times (4- and 8-vCPU VMs)
fig8      active-vCPU trace while running bt
fig9      VM waiting-time reduction
fig10     NPB virtual-IPI rates per spin policy
fig11_13  PARSEC normalized execution times and IPI rates
fig14     Apache reply rate / connection time / response time
ablations design-choice ablations (policy/mechanism/period splits)
========  ==========================================================
"""

from repro.experiments.setups import (
    Config,
    Scenario,
    ScenarioBuilder,
    run_until_done,
)

__all__ = ["Config", "Scenario", "ScenarioBuilder", "run_until_done"]
