"""The ``generality`` experiment: does vScale hold on other schedulers?

The paper implements vScale against Xen's credit scheduler, but Algorithm 1
only needs what any proportional-share host exposes: per-VM weights and
consumed time.  This grid runs one synchronization-heavy NPB cell per
*registered* scheduler (see :mod:`repro.hypervisor.schedulers`), vanilla
and vScale side by side, with the cross-layer sanitizer installed — its
``extendability`` checker re-derives ``n_i = ceil(s_ext/t)`` on every
recompute and raises on any disagreement, so a cell that finishes clean is
a machine-checked "yes, the policy holds here".

Each cell reports whether the invariant held, how many times it was
checked, how often the daemon actually rescaled, and the vScale speedup
over vanilla on the same scheduler.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.experiments.setups import Config, ScenarioBuilder, run_until_done
from repro.hypervisor.schedulers import available
from repro.metrics.report import Table
from repro.parallel import CellSpec, ParallelExecutor, get_default_executor
from repro.sanitize import InvariantViolation
from repro.sim.rng import SeedSequenceFactory
from repro.units import SEC
from repro.workloads.npb import NPBApp, NPB_PROFILES
from repro.workloads.openmp import SPINCOUNT_DEFAULT

WARMUP_NS = 2 * SEC
#: The compared configurations: stock host vs. the vScale control loop.
CONFIGS = (Config.VANILLA, Config.VSCALE)
#: A synchronization-heavy app — the case where scaling decisions matter.
DEFAULT_APP = "cg"


@dataclass
class GeneralityCell:
    """One (scheduler, configuration) cell of the generality grid."""

    scheduler: str
    config: Config
    app: str
    duration_ns: int
    #: Daemon rescaling operations (0 under vanilla).
    reconfigurations: int
    #: How many times the sanitizer re-derived ``n_i = ceil(s_ext/t)``.
    extendability_checks: int
    #: True when every invariant check passed for the whole run.
    holds: bool
    #: The violation message when ``holds`` is False, else "".
    violation: str = ""


def run_cell(
    scheduler: str,
    config: Config,
    app_name: str = DEFAULT_APP,
    seed: int = 3,
    work_scale: float = 1.0,
) -> GeneralityCell:
    """Run one sanitized NPB cell on the named scheduler.

    Same consolidated 8-pCPU host as the Figure 6 cells (4-vCPU worker,
    6 desktop VMs).  The sanitizer is installed unconditionally; an
    :class:`~repro.sanitize.InvariantViolation` is caught and recorded
    as ``holds=False`` rather than propagated, so the grid always
    renders a complete yes/no table.
    """
    if app_name not in NPB_PROFILES:
        raise KeyError(f"unknown NPB app {app_name!r}")
    scenario = (
        ScenarioBuilder(seed=seed, pcpus=8)
        .with_worker_vm(4)
        .with_config(config)
        .with_scheduler(scheduler)
        .build()
    )
    machine = scenario.machine
    sanitizer = machine.install_sanitizer()

    profile = NPB_PROFILES[app_name]
    if work_scale != 1.0:
        profile = replace(
            profile, iterations=max(2, round(profile.iterations * work_scale))
        )
    seeds = SeedSequenceFactory(seed)
    app = NPBApp(
        scenario.worker_kernel,
        profile,
        SPINCOUNT_DEFAULT,
        seeds.stream("npb", "normal"),
        kernel_lock=scenario.worker_kernel_lock,
    )

    holds = True
    violation = ""
    duration = 0
    try:
        scenario.start()
        scenario.run(WARMUP_NS)
        app.launch()
        duration = run_until_done(scenario, app)
    except InvariantViolation as exc:
        holds = False
        violation = str(exc)
        duration = app.duration_ns if app.done else machine.sim.now

    daemon = scenario.daemon
    return GeneralityCell(
        scheduler=scheduler,
        config=config,
        app=app_name,
        duration_ns=duration,
        reconfigurations=daemon.reconfigurations if daemon is not None else 0,
        extendability_checks=sanitizer.stats.get("extendability", 0),
        holds=holds,
        violation=violation,
    )


@dataclass
class GeneralityResult:
    """The assembled per-scheduler generality grid."""

    app: str = DEFAULT_APP
    #: (scheduler, config) -> cell
    cells: dict = field(default_factory=dict)

    def speedup(self, scheduler: str) -> float | None:
        """Vanilla-over-vScale duration ratio on one scheduler."""
        vanilla = self.cells.get((scheduler, Config.VANILLA))
        vscale = self.cells.get((scheduler, Config.VSCALE))
        if vanilla is None or vscale is None or vscale.duration_ns == 0:
            return None
        return vanilla.duration_ns / vscale.duration_ns

    def render(self) -> str:
        table = Table(
            f"Generality: n_i = ceil(s_ext/t) across the scheduler zoo ({self.app})",
            [
                "scheduler", "config", "time (s)", "reconfigs",
                "ext. checks", "holds", "speedup",
            ],
        )
        for (scheduler, config) in sorted(
            self.cells, key=lambda key: (key[0], key[1].value)
        ):
            cell = self.cells[(scheduler, config)]
            speedup = self.speedup(scheduler)
            table.add_row(
                scheduler,
                config.value,
                cell.duration_ns / 1e9,
                cell.reconfigurations,
                cell.extendability_checks,
                "yes" if cell.holds else "no",
                speedup if config is Config.VSCALE and speedup else "-",
            )
        return table.render()


def cells(
    schedulers: tuple[str, ...] | None = None,
    configs: tuple[Config, ...] = CONFIGS,
    app_name: str = DEFAULT_APP,
    seed: int = 3,
    work_scale: float = 1.0,
) -> list[CellSpec]:
    """Decompose the grid: every registered scheduler, vanilla + vScale."""
    specs = []
    for scheduler in schedulers or available():
        for config in configs:
            specs.append(
                CellSpec(
                    experiment="generality",
                    name=f"{scheduler}/{config.value}",
                    fn=run_cell,
                    kwargs=dict(
                        scheduler=scheduler,
                        config=config,
                        app_name=app_name,
                        seed=seed,
                        work_scale=work_scale,
                    ),
                )
            )
    return specs


def run(
    schedulers: tuple[str, ...] | None = None,
    configs: tuple[Config, ...] = CONFIGS,
    app_name: str = DEFAULT_APP,
    seed: int = 3,
    work_scale: float = 1.0,
    executor: ParallelExecutor | None = None,
) -> GeneralityResult:
    """Run the generality grid on the parallel executor."""
    if executor is None:
        executor = get_default_executor()
    result = GeneralityResult(app=app_name)
    specs = cells(schedulers, configs, app_name, seed, work_scale)
    for cell in executor.run_cells(specs):
        result.cells[(cell.scheduler, cell.config)] = cell
    return result
