"""Figures 11-13: PARSEC normalized execution times and IPI rates.

Figure 11 (4-vCPU VM) and Figure 12 (8-vCPU VM) compare the four
configurations over the thirteen PARSEC applications; Figure 13 profiles
the per-vCPU reschedule-IPI rates of the vanilla runs, which explains the
gains: communication-driven applications (dedup far ahead, then
streamcluster/bodytrack/vips) improve, while well-partitioned or
synchronization-free codes (blackscholes, freqmine, raytrace, swaptions)
barely move.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.setups import ALL_CONFIGS, Config, ScenarioBuilder, run_until_done
from repro.metrics.report import Table
from repro.parallel import CellSpec, ParallelExecutor, get_default_executor
from repro.sim.rng import SeedSequenceFactory
from repro.units import SEC
from repro.workloads.parsec import PARSEC_PROFILES, ParsecApp

WARMUP_NS = 2 * SEC

#: Apps the paper highlights as clear winners / as marginal.
COMM_DRIVEN = ("dedup", "bodytrack", "streamcluster", "vips")
MARGINAL = ("ferret", "freqmine", "raytrace", "swaptions")


@dataclass
class ParsecCell:
    app: str
    config: Config
    duration_ns: int
    ipi_rate_per_vcpu: float


@dataclass
class ParsecFigureResult:
    vcpus: int
    cells: dict[tuple[str, Config], ParsecCell] = field(default_factory=dict)

    def normalized(self, app: str, config: Config) -> float:
        base = self.cells[(app, Config.VANILLA)].duration_ns
        return self.cells[(app, config)].duration_ns / base

    def ipi_rate(self, app: str) -> float:
        """Figure 13: the vanilla run's IPI rate."""
        return self.cells[(app, Config.VANILLA)].ipi_rate_per_vcpu

    def render(self) -> str:
        table = Table(
            f"Figures 11/12: PARSEC normalized execution time ({self.vcpus}-vCPU VM)",
            ["app"] + [c.value for c in ALL_CONFIGS] + ["vIPI/s/vCPU (vanilla)"],
        )
        for app in PARSEC_PROFILES:
            if (app, Config.VANILLA) not in self.cells:
                continue
            row = [app]
            for config in ALL_CONFIGS:
                if (app, config) in self.cells:
                    row.append(self.normalized(app, config))
                else:
                    row.append("-")
            row.append(f"{self.ipi_rate(app):.0f}")
            table.add_row(*row)
        return table.render()


def run_cell(
    app_name: str,
    vcpus: int,
    config: Config,
    seed: int = 3,
    work_scale: float = 1.0,
) -> ParsecCell:
    if app_name not in PARSEC_PROFILES:
        raise KeyError(f"unknown PARSEC app {app_name!r}")
    # Same pool sizing rule as the NPB harness: the 8-vCPU VM runs on the
    # 16-logical-CPU host so its relative weight share matches the paper.
    pcpus = 16 if vcpus >= 8 else 8
    builder = (
        ScenarioBuilder(seed=seed, pcpus=pcpus)
        .with_worker_vm(vcpus)
        .with_config(config)
    )
    scenario = builder.build()
    scenario.start()
    scenario.run(WARMUP_NS)

    profile = PARSEC_PROFILES[app_name]
    if work_scale != 1.0:
        from dataclasses import replace

        if profile.kind == "pipeline":
            profile = replace(profile, items=max(4, round(profile.items * work_scale)))
        else:
            profile = replace(
                profile, iterations=max(1, round(profile.iterations * work_scale))
            )

    seeds = SeedSequenceFactory(seed)
    domain = scenario.worker_domain
    ipi0 = sum(int(v.ipi_received) for v in domain.vcpus)
    # The kernel lock exists in every configuration (pv_spinlock only
    # changes the waiting strategy on it).
    app = ParsecApp(
        scenario.worker_kernel,
        profile,
        seeds.stream("parsec", "normal"),
        kernel_lock=scenario.worker_kernel_lock,
    )
    app.launch()
    duration = run_until_done(scenario, app)
    ipis = sum(int(v.ipi_received) for v in domain.vcpus) - ipi0
    return ParsecCell(
        app=app_name,
        config=config,
        duration_ns=duration,
        ipi_rate_per_vcpu=ipis / len(domain.vcpus) * 1e9 / duration,
    )


def cells(
    vcpus: int = 4,
    apps: list[str] | None = None,
    configs: list[Config] | None = None,
    seed: int = 3,
    work_scale: float = 1.0,
) -> list[CellSpec]:
    return [
        CellSpec(
            experiment="fig11_13",
            name=f"{vcpus}v/{app}/{config.value}",
            fn=run_cell,
            kwargs=dict(
                app_name=app,
                vcpus=vcpus,
                config=config,
                seed=seed,
                work_scale=work_scale,
            ),
        )
        for app in apps or list(PARSEC_PROFILES)
        for config in configs or ALL_CONFIGS
    ]


def run(
    vcpus: int = 4,
    apps: list[str] | None = None,
    configs: list[Config] | None = None,
    seed: int = 3,
    work_scale: float = 1.0,
    executor: ParallelExecutor | None = None,
) -> ParsecFigureResult:
    if executor is None:
        executor = get_default_executor()
    specs = cells(vcpus, apps, configs, seed, work_scale)
    result = ParsecFigureResult(vcpus=vcpus)
    for cell in executor.run_cells(specs):
        result.cells[(cell.app, cell.config)] = cell
    return result


@dataclass
class Fig13Result:
    """Figure 13 proper: the vanilla runs' per-vCPU IPI-rate profile."""

    base: ParsecFigureResult

    def rate(self, app: str) -> float:
        return self.base.ipi_rate(app)

    def render(self) -> str:
        table = Table(
            "Figure 13: vIPIs per second per vCPU (PARSEC, vanilla)",
            ["app", "vIPI/s/vCPU"],
        )
        rates = {
            app: self.base.ipi_rate(app)
            for app, config in self.base.cells
            if config is Config.VANILLA
        }
        for app, rate in sorted(rates.items(), key=lambda kv: (-kv[1], kv[0])):
            table.add_row(app, f"{rate:.0f}")
        return table.render()


def run_fig13(
    vcpus: int = 4,
    apps: list[str] | None = None,
    seed: int = 3,
    work_scale: float = 1.0,
    executor: ParallelExecutor | None = None,
) -> Fig13Result:
    """Profile the vanilla runs' reschedule-IPI rates (Figure 13)."""
    return Fig13Result(
        run(vcpus, apps, [Config.VANILLA], seed, work_scale, executor)
    )
