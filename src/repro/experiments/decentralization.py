"""Decentralization experiment: many self-scaling VMs, no dom0 in the loop.

The paper's scalability principle says a scalable design must be
decentralized and bypass dom0 entirely: each VM monitors and reconfigures
*itself* through the vScale channel at microsecond cost, so the management
overhead stays constant per VM as the host grows, whereas a VCPU-Bal-style
centralized manager pays a libxl sweep over every VM per decision.

This experiment boots ``n`` worker VMs, every one running its own daemon,
lets their bursty demands interleave, and reports:

* convergence — how close each VM's CPU consumption lands to its fair
  share over the run;
* responsiveness — the daemons' reconfiguration counts (they all act);
* management cost — total time the host spent on monitoring, compared
  with what a centralized dom0 sweep at the same decision rate would have
  cost (from the Figure 4 cost model).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.channel import ChannelCosts
from repro.core.daemon import VScaleDaemon
from repro.guest.kernel import GuestKernel
from repro.hypervisor.config import HostConfig
from repro.hypervisor.dom0 import Dom0Load, Dom0Toolstack
from repro.hypervisor.machine import Machine
from repro.metrics.report import Table
from repro.sim.rng import SeedSequenceFactory
from repro.units import MS, SEC
from repro.workloads.synthetic import on_off


@dataclass
class DecentralizationResult:
    vms: int
    duration_ns: int
    #: name -> (consumed_ns, entitled_ns) where the entitlement is
    #: min(demand, fair share): a VM that wants less than its share is
    #: *supposed* to consume only its demand (work conservation hands the
    #: remainder to whoever bursts).
    shares: dict[str, tuple[int, int]] = field(default_factory=dict)
    reconfigurations: dict[str, int] = field(default_factory=dict)
    #: Total monitoring cost actually paid (all channels, all reads), ns.
    channel_cost_ns: int = 0
    #: What centralized libxl sweeps at the same total decision rate would
    #: have cost dom0, ns (sampled from the Figure 4 model).
    centralized_cost_ns: int = 0

    @property
    def worst_share_error(self) -> float:
        """Largest relative deviation from fair share across VMs."""
        worst = 0.0
        for consumed, fair in self.shares.values():
            if fair:
                worst = max(worst, abs(consumed - fair) / fair)
        return worst

    @property
    def monitoring_speedup(self) -> float:
        if self.channel_cost_ns == 0:
            return float("inf")
        return self.centralized_cost_ns / self.channel_cost_ns

    def render(self) -> str:
        table = Table(
            f"Decentralized self-scaling: {self.vms} VMs, every one its own daemon",
            ["VM", "consumed (s)", "fair share (s)", "error", "reconfigs"],
        )
        for name, (consumed, fair) in self.shares.items():
            error = abs(consumed - fair) / fair if fair else 0.0
            table.add_row(
                name,
                consumed / 1e9,
                fair / 1e9,
                f"{error * 100:.1f}%",
                self.reconfigurations.get(name, 0),
            )
        lines = [table.render()]
        lines.append(
            f"monitoring cost: {self.channel_cost_ns / 1e6:.2f}ms decentralized vs "
            f"{self.centralized_cost_ns / 1e6:.2f}ms centralized "
            f"({self.monitoring_speedup:.0f}x)"
        )
        return "\n".join(lines)


def run(
    vms: int = 8,
    pcpus: int = 8,
    vcpus_per_vm: int = 4,
    duration_ns: int = 6 * SEC,
    seed: int = 5,
) -> DecentralizationResult:
    """All-worker host: every VM runs bursty load and its own daemon."""
    if vms < 2:
        raise ValueError("need at least two VMs to contend")
    machine = Machine(HostConfig(pcpus=pcpus), seed=seed)
    seeds = SeedSequenceFactory(seed)
    kernels: list[GuestKernel] = []
    daemons: list[VScaleDaemon] = []
    demands: dict[str, float] = {}
    for index in range(vms):
        domain = machine.create_domain(f"vm{index}", vcpus=vcpus_per_vm, weight=256)
        kernel = GuestKernel(domain)
        rng = seeds.generator(f"load.{index}")
        # Staggered heavy bursts so demand keeps shifting between VMs.
        demand_pcpus = 0.0
        for thread_index in range(vcpus_per_vm):
            busy = int(rng.uniform(400 * MS, 900 * MS))
            idle = int(rng.uniform(200 * MS, 700 * MS))
            kernel.spawn(on_off(kernel, busy, idle), f"burst{thread_index}")
            demand_pcpus += busy / (busy + idle)
        demands[domain.name] = demand_pcpus
        kernels.append(kernel)
    machine.install_vscale()
    for kernel in kernels:
        daemon = VScaleDaemon(kernel)
        daemon.install()
        daemons.append(daemon)
    machine.start()
    machine.run(until=duration_ns)

    result = DecentralizationResult(vms=vms, duration_ns=duration_ns)
    fair = pcpus * duration_ns // vms
    total_reads = 0
    for kernel, daemon in zip(kernels, daemons):
        domain = kernel.domain
        entitled = min(round(demands[domain.name] * duration_ns), fair)
        result.shares[domain.name] = (domain.total_run_ns(machine.sim.now), entitled)
        result.reconfigurations[domain.name] = daemon.reconfigurations
        total_reads += daemon.channel.reads
        result.channel_cost_ns += sum(daemon.channel.read_latency.samples)
    # What the same number of decisions would cost a centralized manager:
    # each decision is one libxl sweep over all VMs.
    toolstack = Dom0Toolstack(seeds.generator("dom0"), load=Dom0Load.IDLE)
    decisions = total_reads // max(1, vms)  # one sweep covers every VM
    for _ in range(min(decisions, 5000)):
        result.centralized_cost_ns += toolstack.sample_read_all_ns(vms)
    if decisions > 5000:
        result.centralized_cost_ns = int(
            result.centralized_cost_ns * decisions / 5000
        )
    return result
