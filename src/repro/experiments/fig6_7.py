"""Figures 6 and 7: NPB-OMP normalized execution times.

Figure 6 uses a 4-vCPU worker VM, Figure 7 an 8-vCPU one.  Each figure has
three panels (GOMP_SPINCOUNT = 30 billion / 300 K / 0) and compares four
configurations (vanilla, vanilla+pvlock, vScale, vScale+pvlock), with
execution time normalized to vanilla.

The paper's qualitative shape, which the benchmark asserts:

* synchronization-intensive apps (lu, ua, cg, sp, bt, mg) speed up heavily
  under vScale, regardless of spinning policy;
* ep/ft/is are insensitive (little synchronization, few IPIs);
* pv-spinlock barely matters at 30 B spinning (user-space spin) and gains
  relevance as the spin count drops.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.npb_common import NPBCell, run_cell
from repro.experiments.setups import ALL_CONFIGS, Config
from repro.metrics.report import Table
from repro.parallel import CellSpec, ParallelExecutor, get_default_executor
from repro.workloads.npb import NPB_PROFILES
from repro.workloads.openmp import (
    SPINCOUNT_ACTIVE,
    SPINCOUNT_DEFAULT,
    SPINCOUNT_PASSIVE,
)

SPINCOUNTS = (SPINCOUNT_ACTIVE, SPINCOUNT_DEFAULT, SPINCOUNT_PASSIVE)
SPINCOUNT_LABELS = {
    SPINCOUNT_ACTIVE: "30B",
    SPINCOUNT_DEFAULT: "300K",
    SPINCOUNT_PASSIVE: "0",
}

#: Apps the paper singles out as synchronization-intensive winners.
SYNC_HEAVY = ("bt", "cg", "lu", "mg", "sp", "ua")
#: Apps the paper calls insensitive.
INSENSITIVE = ("ep", "ft", "is")


@dataclass
class NPBFigureResult:
    vcpus: int
    #: (app, spincount, config) -> cell
    cells: dict[tuple[str, int, Config], NPBCell] = field(default_factory=dict)

    def normalized(self, app: str, spincount: int, config: Config) -> float:
        base = self.cells[(app, spincount, Config.VANILLA)].duration_ns
        return self.cells[(app, spincount, config)].duration_ns / base

    def render(self) -> str:
        table = Table(
            f"Figures 6/7: NPB normalized execution time ({self.vcpus}-vCPU VM)",
            ["spincount", "app"] + [c.value for c in ALL_CONFIGS],
        )
        for spincount in SPINCOUNTS:
            for app in NPB_PROFILES:
                if (app, spincount, Config.VANILLA) not in self.cells:
                    continue
                row = [SPINCOUNT_LABELS[spincount], app]
                for config in ALL_CONFIGS:
                    if (app, spincount, config) in self.cells:
                        row.append(self.normalized(app, spincount, config))
                    else:
                        row.append("-")
                table.add_row(*row)
        return table.render()


def cells(
    vcpus: int = 4,
    apps: list[str] | None = None,
    spincounts: tuple[int, ...] = SPINCOUNTS,
    configs: list[Config] | None = None,
    seed: int = 3,
    work_scale: float = 1.0,
    scheduler: str | None = None,
) -> list[CellSpec]:
    """Decompose one figure's NPB matrix into independent cells.

    ``scheduler`` picks the pool scheduler by registry name; ``None``
    keeps the default, and also the historical cell identity — the
    scheduler key enters the cell kwargs (and hence the cache key and
    golden name) only when explicitly set.
    """
    specs = []
    for spincount in spincounts:
        for app in apps or list(NPB_PROFILES):
            for config in configs or ALL_CONFIGS:
                label = SPINCOUNT_LABELS.get(spincount, str(spincount))
                name = f"{vcpus}v/{app}/spin={label}/{config.value}"
                kwargs = dict(
                    app_name=app,
                    vcpus=vcpus,
                    spincount=spincount,
                    config=config,
                    seed=seed,
                    work_scale=work_scale,
                )
                if scheduler is not None:
                    name += f"/sched={scheduler}"
                    kwargs["scheduler"] = scheduler
                specs.append(
                    CellSpec(
                        experiment="fig6_7",
                        name=name,
                        fn=run_cell,
                        kwargs=kwargs,
                    )
                )
    return specs


def run(
    vcpus: int = 4,
    apps: list[str] | None = None,
    spincounts: tuple[int, ...] = SPINCOUNTS,
    configs: list[Config] | None = None,
    seed: int = 3,
    work_scale: float = 1.0,
    scheduler: str | None = None,
    executor: ParallelExecutor | None = None,
) -> NPBFigureResult:
    """Run the (subset of the) NPB matrix for one figure."""
    if executor is None:
        executor = get_default_executor()
    result = NPBFigureResult(vcpus=vcpus)
    specs = cells(vcpus, apps, spincounts, configs, seed, work_scale, scheduler)
    for cell in executor.run_cells(specs):
        result.cells[(cell.app, cell.spincount, cell.config)] = cell
    return result
