"""Figure 10: virtual-IPI rates of the NPB apps under each spin policy.

The paper profiles reschedule IPIs in the hypervisor while running the
vanilla configuration: with heavy spinning almost none are generated
(spinners never sleep, so nobody needs waking), and the less the apps
spin, the more they lean on futex — mg, sp and ua reach hundreds to a
thousand IPIs per vCPU per second at GOMP_SPINCOUNT=0.  This correlates
directly with where pv-spinlock and IPI-driven heuristics can or cannot
help, and explains the Figure 6 panels.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.npb_common import run_cell
from repro.experiments.setups import Config
from repro.metrics.report import Table
from repro.parallel import CellSpec, ParallelExecutor, get_default_executor
from repro.workloads.npb import NPB_PROFILES
from repro.workloads.openmp import (
    SPINCOUNT_ACTIVE,
    SPINCOUNT_DEFAULT,
    SPINCOUNT_PASSIVE,
)


@dataclass
class Fig10Result:
    #: (app, spincount) -> IPIs per vCPU per second, vanilla config.
    rates: dict[tuple[str, int], float] = field(default_factory=dict)

    def rate(self, app: str, spincount: int) -> float:
        return self.rates[(app, spincount)]

    def render(self) -> str:
        table = Table(
            "Figure 10: vIPIs per second per vCPU (vanilla)",
            ["app", "spin=30B", "spin=300K", "spin=0"],
        )
        apps = sorted({app for app, _ in self.rates})
        for app in apps:
            table.add_row(
                app,
                self.rates.get((app, SPINCOUNT_ACTIVE), float("nan")),
                self.rates.get((app, SPINCOUNT_DEFAULT), float("nan")),
                self.rates.get((app, SPINCOUNT_PASSIVE), float("nan")),
            )
        return table.render()


def cells(
    apps: list[str] | None = None,
    spincounts: tuple[int, ...] = (SPINCOUNT_ACTIVE, SPINCOUNT_DEFAULT, SPINCOUNT_PASSIVE),
    vcpus: int = 4,
    seed: int = 3,
    work_scale: float = 1.0,
) -> list[CellSpec]:
    return [
        CellSpec(
            experiment="fig10",
            name=f"{app}/spin={spincount}",
            fn=run_cell,
            kwargs=dict(
                app_name=app,
                vcpus=vcpus,
                spincount=spincount,
                config=Config.VANILLA,
                seed=seed,
                work_scale=work_scale,
            ),
        )
        for app in apps or list(NPB_PROFILES)
        for spincount in spincounts
    ]


def run(
    apps: list[str] | None = None,
    spincounts: tuple[int, ...] = (SPINCOUNT_ACTIVE, SPINCOUNT_DEFAULT, SPINCOUNT_PASSIVE),
    vcpus: int = 4,
    seed: int = 3,
    work_scale: float = 1.0,
    executor: ParallelExecutor | None = None,
) -> Fig10Result:
    if executor is None:
        executor = get_default_executor()
    specs = cells(apps, spincounts, vcpus, seed, work_scale)
    result = Fig10Result()
    for cell in executor.run_cells(specs):
        result.rates[(cell.app, cell.spincount)] = cell.ipi_rate_per_vcpu
    return result
