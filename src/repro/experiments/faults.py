"""The ``faults`` experiment: control-loop robustness under injected faults.

A fault-rate x workload matrix comparing vScale (hardened daemon +
balancer) against the hotplug baseline while the fault injector drops
and delays reschedule IPIs, fails and stales channel reads, jitters and
stalls the daemon, fails freeze syscalls, and bursts dom0 sweeps — all
from one uniform rate knob (:meth:`repro.faults.FaultConfig.scaled`).

Each cell reports throughput degradation (slowdown vs. the same
mechanism at rate 0) and control-loop stability: freeze-flap count
(direction reversals of the scaling decision), suppressed flaps, stale
decisions held, and the injector's own tally of what it actually did.
The paper's claim under test: vScale's control loop degrades smoothly
— no oscillation blow-up, no deadlock — because every fault has an
explicit degradation path (see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.core.baselines import HotplugScaler
from repro.core.daemon import DaemonConfig
from repro.experiments.setups import Config, ScenarioBuilder, run_until_done
from repro.faults import FaultConfig, FaultPlan
from repro.guest.hotplug import HotplugModel
from repro.metrics.report import Table
from repro.parallel import CellSpec, ParallelExecutor, get_default_executor
from repro.sim.rng import SeedSequenceFactory
from repro.units import SEC
from repro.workloads.npb import NPBApp, NPB_PROFILES
from repro.workloads.openmp import SPINCOUNT_DEFAULT

#: Uniform per-site fault rates of the matrix (0.0 is the baseline row).
FAULT_RATES = (0.0, 0.02, 0.05, 0.1)
#: The compared scaling mechanisms.
MECHANISMS = ("vscale", "hotplug")
#: One synchronization-heavy app and one insensitive app by default.
DEFAULT_APPS = ("cg", "ep")

WARMUP_NS = 2 * SEC
#: Seed of the fault plan itself — independent of the workload seed so
#: the same fault schedule can be replayed against different scenarios.
FAULT_SEED = 11


@dataclass
class FaultCell:
    """One (app, mechanism, fault-rate) matrix cell."""

    app: str
    mechanism: str
    rate: float
    duration_ns: int
    wait_ns: int
    reconfigurations: int
    #: Direction reversals of the scaling decision (flap pressure).
    direction_flaps: int
    #: Reversals suppressed by the dwell-time hysteresis.
    flaps_suppressed: int
    #: Periods where expired data was ignored (stale-decision count).
    stale_holds: int
    #: Channel reads that failed (before retries).
    read_failures: int
    #: The injector's tally (:class:`repro.faults.FaultStats`), {} at rate 0.
    injected: dict = field(default_factory=dict)
    #: The daemon's full degradation counters, {} for the hotplug baseline.
    daemon: dict = field(default_factory=dict)


def run_matrix_cell(
    app_name: str,
    mechanism: str,
    rate: float,
    seed: int = 3,
    work_scale: float = 1.0,
    fault_seed: int = FAULT_SEED,
    scheduler: str | None = None,
) -> FaultCell:
    """Run one cell of the fault matrix.

    Same consolidated 8-pCPU host as the Figure 6 cells (4-vCPU worker,
    6 desktop VMs), with the fault plan layered on top.  vScale runs the
    hardened daemon profile; the hotplug baseline keeps its naive
    skip-on-failure loop.  ``scheduler`` selects the pool scheduler by
    registry name (``None`` keeps the default) — fault injection routes
    through the scheduler interface, so any registered scheduler works.
    """
    if app_name not in NPB_PROFILES:
        raise KeyError(f"unknown NPB app {app_name!r}")
    if mechanism not in MECHANISMS:
        raise ValueError(f"unknown mechanism {mechanism!r}")
    seeds = SeedSequenceFactory(seed)
    plan = FaultPlan(FaultConfig.scaled(rate), seed=fault_seed)

    if mechanism == "vscale":
        builder = (
            ScenarioBuilder(seed=seed, pcpus=8)
            .with_worker_vm(4)
            .with_config(Config.VSCALE)
            .with_scheduler(scheduler)
            .with_faults(plan)
        )
        builder.daemon_config = DaemonConfig.hardened()
        scenario = builder.build()
        scaler = None
    else:
        scenario = (
            ScenarioBuilder(seed=seed, pcpus=8)
            .with_worker_vm(4)
            .with_config(Config.VANILLA)
            .with_scheduler(scheduler)
            .with_faults(plan)
            .build()
        )
        model = HotplugModel("v3.14.15", seeds.generator("hp"))
        scaler = HotplugScaler(scenario.worker_kernel, model)
        scaler.install()

    scenario.start()
    scenario.run(WARMUP_NS)

    profile = NPB_PROFILES[app_name]
    if work_scale != 1.0:
        profile = replace(
            profile, iterations=max(2, round(profile.iterations * work_scale))
        )
    domain = scenario.worker_domain
    machine = scenario.machine
    wait0 = domain.total_wait_ns(machine.sim.now)
    app = NPBApp(
        scenario.worker_kernel,
        profile,
        SPINCOUNT_DEFAULT,
        seeds.stream("npb", "normal"),
        kernel_lock=scenario.worker_kernel_lock,
    )
    app.launch()
    duration = run_until_done(scenario, app)
    wait = domain.total_wait_ns(machine.sim.now) - wait0

    daemon = scenario.daemon
    stats = daemon.stats if daemon is not None else None
    return FaultCell(
        app=app_name,
        mechanism=mechanism,
        rate=rate,
        duration_ns=duration,
        wait_ns=wait,
        reconfigurations=(
            daemon.reconfigurations if daemon is not None
            else scaler.reconfigurations if scaler is not None
            else 0
        ),
        direction_flaps=stats.direction_flaps if stats else 0,
        flaps_suppressed=stats.flaps_suppressed if stats else 0,
        stale_holds=stats.stale_holds if stats else 0,
        read_failures=(
            stats.read_failures if stats
            else scaler.read_failures if scaler is not None
            else 0
        ),
        injected=(
            machine.faults.stats.to_dict() if machine.faults is not None else {}
        ),
        daemon=stats.to_dict() if stats else {},
    )


@dataclass
class FaultMatrixResult:
    """The assembled fault matrix."""

    #: (app, mechanism, rate) -> cell
    cells: dict = field(default_factory=dict)

    def slowdown(self, app: str, mechanism: str, rate: float) -> float:
        """Duration relative to the same mechanism's lowest-rate cell."""
        rates = sorted(r for a, m, r in self.cells if a == app and m == mechanism)
        base = self.cells[(app, mechanism, rates[0])].duration_ns
        return self.cells[(app, mechanism, rate)].duration_ns / base

    def render(self) -> str:
        table = Table(
            "Fault matrix: degradation and control-loop stability",
            [
                "app", "mechanism", "rate", "time (s)", "slowdown",
                "reconfigs", "flaps", "suppressed", "stale holds",
                "read fails", "retries", "abandons", "resyncs", "injected",
            ],
        )
        for (app, mechanism, rate) in sorted(self.cells):
            cell = self.cells[(app, mechanism, rate)]
            # Recovery counters ride the daemon dict so old cached cells
            # (and the hotplug baseline, which has no daemon) render as 0.
            daemon = cell.daemon
            table.add_row(
                app,
                cell.mechanism,
                f"{rate:g}",
                cell.duration_ns / 1e9,
                self.slowdown(app, mechanism, rate),
                cell.reconfigurations,
                cell.direction_flaps,
                cell.flaps_suppressed,
                cell.stale_holds,
                cell.read_failures,
                daemon.get("read_retries", 0),
                daemon.get("read_abandons", 0),
                daemon.get("watchdog_resyncs", 0),
                sum(cell.injected.values()) if cell.injected else 0,
            )
        return table.render()


def cells(
    apps: tuple[str, ...] = DEFAULT_APPS,
    mechanisms: tuple[str, ...] = MECHANISMS,
    rates: tuple[float, ...] = FAULT_RATES,
    seed: int = 3,
    work_scale: float = 1.0,
    fault_seed: int = FAULT_SEED,
    scheduler: str | None = None,
) -> list[CellSpec]:
    """Decompose the fault matrix into independent cells.

    As in :func:`repro.experiments.fig6_7.cells`, the scheduler key
    enters the cell name and kwargs only when explicitly set, so legacy
    cache keys are untouched.
    """
    specs = []
    for app in apps:
        for mechanism in mechanisms:
            for rate in rates:
                name = f"{app}/{mechanism}/rate={rate:g}"
                kwargs = dict(
                    app_name=app,
                    mechanism=mechanism,
                    rate=rate,
                    seed=seed,
                    work_scale=work_scale,
                    fault_seed=fault_seed,
                )
                if scheduler is not None:
                    name += f"/sched={scheduler}"
                    kwargs["scheduler"] = scheduler
                specs.append(
                    CellSpec(
                        experiment="faults",
                        name=name,
                        fn=run_matrix_cell,
                        kwargs=kwargs,
                    )
                )
    return specs


def run(
    apps: tuple[str, ...] = DEFAULT_APPS,
    mechanisms: tuple[str, ...] = MECHANISMS,
    rates: tuple[float, ...] = FAULT_RATES,
    seed: int = 3,
    work_scale: float = 1.0,
    fault_seed: int = FAULT_SEED,
    scheduler: str | None = None,
    executor: ParallelExecutor | None = None,
) -> FaultMatrixResult:
    """Run the fault matrix on the parallel executor."""
    if executor is None:
        executor = get_default_executor()
    result = FaultMatrixResult()
    specs = cells(apps, mechanisms, rates, seed, work_scale, fault_seed, scheduler)
    for cell in executor.run_cells(specs):
        result.cells[(cell.app, cell.mechanism, cell.rate)] = cell
    return result
