"""Design-choice ablations (DESIGN.md section 5).

These are not in the paper's evaluation; they isolate the contributions of
vScale's individual design decisions on our simulated stack:

* **policy** — consumption-aware extendability (vScale) vs. weight-only
  targets (VCPU-Bal): work conservation under mixed load.
* **mechanism** — microsecond freeze/unfreeze vs. Linux CPU hotplug, with
  the same extendability policy driving both.
* **rounding** — ceil (Algorithm 1's letter) vs. floor vs. conservative
  rounding of the extendability into a vCPU count.
* **daemon period** — reaction latency vs. background burstiness.

Each ablation variant is an independent simulation, so every
``run_*_ablation`` fans its variants out through the parallel executor
(one :class:`~repro.parallel.CellSpec` per variant); the module-level
``_*_point`` functions are the picklable cell bodies.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.baselines import HotplugScaler, VCPUBalManager
from repro.core.daemon import DaemonConfig
from repro.experiments.setups import Config, ScenarioBuilder, run_until_done
from repro.guest.hotplug import HotplugModel
from repro.hypervisor.dom0 import Dom0Load, Dom0Toolstack
from repro.metrics.report import Table
from repro.parallel import CellSpec, ParallelExecutor, get_default_executor
from repro.sim.rng import SeedSequenceFactory
from repro.units import MS, SEC
from repro.workloads.npb import NPBApp, NPB_PROFILES
from repro.workloads.openmp import SPINCOUNT_ACTIVE

WARMUP_NS = 2 * SEC


@dataclass
class AblationPoint:
    label: str
    duration_ns: int
    wait_ns: int
    reconfigurations: int


@dataclass
class AblationResult:
    """One ablation's points, renderable like the figure results."""

    title: str
    points: list[AblationPoint] = field(default_factory=list)

    def render(self) -> str:
        table = Table(
            self.title, ["variant", "duration (s)", "VM wait (s)", "reconfigs"]
        )
        for point in self.points:
            table.add_row(
                point.label,
                point.duration_ns / 1e9,
                point.wait_ns / 1e9,
                point.reconfigurations,
            )
        return table.render()


def _run_app(scenario, app_name: str, seed: int, work_scale: float) -> tuple[int, int]:
    from dataclasses import replace

    seeds = SeedSequenceFactory(seed)
    profile = NPB_PROFILES[app_name]
    if work_scale != 1.0:
        profile = replace(profile, iterations=max(2, round(profile.iterations * work_scale)))
    domain = scenario.worker_domain
    wait0 = domain.total_wait_ns(scenario.machine.sim.now)
    app = NPBApp(
        scenario.worker_kernel, profile, SPINCOUNT_ACTIVE, seeds.stream("npb", "normal")
    )
    app.launch()
    duration = run_until_done(scenario, app)
    wait = domain.total_wait_ns(scenario.machine.sim.now) - wait0
    return duration, wait


def _mechanism_point(
    variant: str, app_name: str, hotplug_kernel: str, seed: int, work_scale: float
) -> AblationPoint:
    """One mechanism variant: ``fixed`` / ``hotplug`` / ``vscale``."""
    seeds = SeedSequenceFactory(seed)
    if variant == "fixed":
        scenario = ScenarioBuilder(seed=seed).with_config(Config.VANILLA).build()
        label, reconfigs = "fixed vCPUs", lambda: 0
    elif variant == "hotplug":
        scenario = ScenarioBuilder(seed=seed).with_config(Config.VANILLA).build()
        model = HotplugModel(hotplug_kernel, seeds.generator("hp"))
        scaler = HotplugScaler(scenario.worker_kernel, model)
        scaler.install()
        label = f"hotplug ({hotplug_kernel})"
        reconfigs = lambda: scaler.reconfigurations
    elif variant == "vscale":
        scenario = ScenarioBuilder(seed=seed).with_config(Config.VSCALE).build()
        label = "vScale balancer"
        reconfigs = lambda: scenario.daemon.reconfigurations if scenario.daemon else 0
    else:
        raise ValueError(f"unknown mechanism variant {variant!r}")
    scenario.start()
    scenario.run(WARMUP_NS)
    duration, wait = _run_app(scenario, app_name, seed, work_scale)
    return AblationPoint(label, duration, wait, reconfigs())


def run_mechanism_ablation(
    app_name: str = "cg",
    hotplug_kernel: str = "v3.14.15",
    seed: int = 3,
    work_scale: float = 0.5,
    executor: ParallelExecutor | None = None,
) -> list[AblationPoint]:
    """Same policy, three mechanisms: none / hotplug / vScale balancer."""
    if executor is None:
        executor = get_default_executor()
    specs = [
        CellSpec(
            experiment="ablations",
            name=f"mechanism/{variant}",
            fn=_mechanism_point,
            kwargs=dict(
                variant=variant,
                app_name=app_name,
                hotplug_kernel=hotplug_kernel,
                seed=seed,
                work_scale=work_scale,
            ),
        )
        for variant in ("fixed", "hotplug", "vscale")
    ]
    return executor.run_cells(specs)


def _policy_point(
    variant: str, app_name: str, seed: int, work_scale: float
) -> AblationPoint:
    """One policy variant: ``vscale`` / ``vcpubal``."""
    seeds = SeedSequenceFactory(seed)
    if variant == "vscale":
        scenario = ScenarioBuilder(seed=seed).with_config(Config.VSCALE).build()
        label = "vScale (consumption-aware)"
        reconfigs = lambda: scenario.daemon.reconfigurations if scenario.daemon else 0
    elif variant == "vcpubal":
        scenario = ScenarioBuilder(seed=seed).with_config(Config.VANILLA).build()
        dom0 = Dom0Toolstack(seeds.generator("dom0"), load=Dom0Load.IDLE)
        model = HotplugModel("v3.14.15", seeds.generator("hp"))
        manager = VCPUBalManager(scenario.worker_kernel, dom0, model)
        manager.install()
        label = "VCPU-Bal (weight-only, dom0)"
        reconfigs = lambda: manager.reconfigurations
    else:
        raise ValueError(f"unknown policy variant {variant!r}")
    scenario.start()
    scenario.run(WARMUP_NS)
    duration, wait = _run_app(scenario, app_name, seed, work_scale)
    return AblationPoint(label, duration, wait, reconfigs())


def run_policy_ablation(
    app_name: str = "cg",
    seed: int = 3,
    work_scale: float = 0.5,
    executor: ParallelExecutor | None = None,
) -> list[AblationPoint]:
    """vScale's consumption-aware policy vs. VCPU-Bal's weight-only one."""
    if executor is None:
        executor = get_default_executor()
    specs = [
        CellSpec(
            experiment="ablations",
            name=f"policy/{variant}",
            fn=_policy_point,
            kwargs=dict(
                variant=variant, app_name=app_name, seed=seed, work_scale=work_scale
            ),
        )
        for variant in ("vscale", "vcpubal")
    ]
    return executor.run_cells(specs)


def _rounding_point(
    mode: str, app_name: str, seed: int, work_scale: float
) -> AblationPoint:
    builder = ScenarioBuilder(seed=seed).with_config(Config.VSCALE)
    builder.daemon_config = DaemonConfig(round_mode=mode)
    scenario = builder.build()
    scenario.start()
    scenario.run(WARMUP_NS)
    duration, wait = _run_app(scenario, app_name, seed, work_scale)
    return AblationPoint(
        f"round={mode}",
        duration,
        wait,
        scenario.daemon.reconfigurations if scenario.daemon else 0,
    )


def run_rounding_ablation(
    app_name: str = "ua",
    seed: int = 3,
    work_scale: float = 0.5,
    executor: ParallelExecutor | None = None,
) -> list[AblationPoint]:
    """ceil vs. floor vs. conservative rounding of the vCPU target."""
    if executor is None:
        executor = get_default_executor()
    specs = [
        CellSpec(
            experiment="ablations",
            name=f"rounding/{mode}",
            fn=_rounding_point,
            kwargs=dict(
                mode=mode, app_name=app_name, seed=seed, work_scale=work_scale
            ),
        )
        for mode in ("ceil", "floor", "conservative")
    ]
    return executor.run_cells(specs)


def _period_point(
    period_ms: int, app_name: str, seed: int, work_scale: float
) -> AblationPoint:
    builder = ScenarioBuilder(seed=seed).with_config(Config.VSCALE)
    builder.daemon_config = DaemonConfig(period_ns=period_ms * MS)
    scenario = builder.build()
    scenario.start()
    scenario.run(WARMUP_NS)
    duration, wait = _run_app(scenario, app_name, seed, work_scale)
    return AblationPoint(
        f"period={period_ms}ms",
        duration,
        wait,
        scenario.daemon.reconfigurations if scenario.daemon else 0,
    )


def run_period_ablation(
    app_name: str = "cg",
    periods_ms: tuple[int, ...] = (10, 100, 1000),
    seed: int = 3,
    work_scale: float = 0.5,
    executor: ParallelExecutor | None = None,
) -> list[AblationPoint]:
    """Daemon polling period sensitivity."""
    if executor is None:
        executor = get_default_executor()
    specs = [
        CellSpec(
            experiment="ablations",
            name=f"period/{period}ms",
            fn=_period_point,
            kwargs=dict(
                period_ms=period, app_name=app_name, seed=seed, work_scale=work_scale
            ),
        )
        for period in periods_ms
    ]
    return executor.run_cells(specs)


def run_all(
    seed: int = 3,
    work_scale: float = 0.5,
    executor: ParallelExecutor | None = None,
) -> list[AblationResult]:
    """All four ablations, as renderable results (used by the runner)."""
    if executor is None:
        executor = get_default_executor()
    return [
        AblationResult(
            "Ablation: reconfiguration mechanism (cg, heavy spin)",
            run_mechanism_ablation(seed=seed, work_scale=work_scale, executor=executor),
        ),
        AblationResult(
            "Ablation: scaling policy (cg, heavy spin)",
            run_policy_ablation(seed=seed, work_scale=work_scale, executor=executor),
        ),
        AblationResult(
            "Ablation: extendability rounding (ua, heavy spin)",
            run_rounding_ablation(seed=seed, work_scale=work_scale, executor=executor),
        ),
        AblationResult(
            "Ablation: daemon polling period (cg, heavy spin)",
            run_period_ablation(seed=seed, work_scale=work_scale, executor=executor),
        ),
    ]
