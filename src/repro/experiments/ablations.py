"""Design-choice ablations (DESIGN.md section 5).

These are not in the paper's evaluation; they isolate the contributions of
vScale's individual design decisions on our simulated stack:

* **policy** — consumption-aware extendability (vScale) vs. weight-only
  targets (VCPU-Bal): work conservation under mixed load.
* **mechanism** — microsecond freeze/unfreeze vs. Linux CPU hotplug, with
  the same extendability policy driving both.
* **rounding** — ceil (Algorithm 1's letter) vs. floor vs. conservative
  rounding of the extendability into a vCPU count.
* **daemon period** — reaction latency vs. background burstiness.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.baselines import HotplugScaler, VCPUBalManager
from repro.core.daemon import DaemonConfig
from repro.experiments.setups import Config, ScenarioBuilder, run_until_done
from repro.guest.hotplug import HotplugModel
from repro.hypervisor.dom0 import Dom0Load, Dom0Toolstack
from repro.sim.rng import SeedSequenceFactory
from repro.units import MS, SEC
from repro.workloads.npb import NPBApp, NPB_PROFILES
from repro.workloads.openmp import SPINCOUNT_ACTIVE

WARMUP_NS = 2 * SEC


@dataclass
class AblationPoint:
    label: str
    duration_ns: int
    wait_ns: int
    reconfigurations: int


def _run_app(scenario, app_name: str, seed: int, work_scale: float) -> tuple[int, int]:
    from dataclasses import replace

    seeds = SeedSequenceFactory(seed)
    profile = NPB_PROFILES[app_name]
    if work_scale != 1.0:
        profile = replace(profile, iterations=max(2, round(profile.iterations * work_scale)))
    domain = scenario.worker_domain
    wait0 = domain.total_wait_ns(scenario.machine.sim.now)
    app = NPBApp(
        scenario.worker_kernel, profile, SPINCOUNT_ACTIVE, seeds.generator("npb")
    )
    app.launch()
    duration = run_until_done(scenario, app)
    wait = domain.total_wait_ns(scenario.machine.sim.now) - wait0
    return duration, wait


def run_mechanism_ablation(
    app_name: str = "cg",
    hotplug_kernel: str = "v3.14.15",
    seed: int = 3,
    work_scale: float = 0.5,
) -> list[AblationPoint]:
    """Same policy, three mechanisms: none / hotplug / vScale balancer."""
    points = []
    seeds = SeedSequenceFactory(seed)

    # No scaling at all (vanilla).
    scenario = ScenarioBuilder(seed=seed).with_config(Config.VANILLA).build()
    scenario.start()
    scenario.run(WARMUP_NS)
    duration, wait = _run_app(scenario, app_name, seed, work_scale)
    points.append(AblationPoint("fixed vCPUs", duration, wait, 0))

    # Extendability policy + Linux hotplug mechanism.
    scenario = ScenarioBuilder(seed=seed).with_config(Config.VANILLA).build()
    model = HotplugModel(hotplug_kernel, seeds.generator("hp"))
    scaler = HotplugScaler(scenario.worker_kernel, model)
    scaler.install()
    scenario.start()
    scenario.run(WARMUP_NS)
    duration, wait = _run_app(scenario, app_name, seed, work_scale)
    points.append(
        AblationPoint(f"hotplug ({hotplug_kernel})", duration, wait, scaler.reconfigurations)
    )

    # Full vScale.
    scenario = ScenarioBuilder(seed=seed).with_config(Config.VSCALE).build()
    scenario.start()
    scenario.run(WARMUP_NS)
    duration, wait = _run_app(scenario, app_name, seed, work_scale)
    points.append(
        AblationPoint(
            "vScale balancer",
            duration,
            wait,
            scenario.daemon.reconfigurations if scenario.daemon else 0,
        )
    )
    return points


def run_policy_ablation(
    app_name: str = "cg", seed: int = 3, work_scale: float = 0.5
) -> list[AblationPoint]:
    """vScale's consumption-aware policy vs. VCPU-Bal's weight-only one."""
    points = []
    seeds = SeedSequenceFactory(seed)

    scenario = ScenarioBuilder(seed=seed).with_config(Config.VSCALE).build()
    scenario.start()
    scenario.run(WARMUP_NS)
    duration, wait = _run_app(scenario, app_name, seed, work_scale)
    points.append(
        AblationPoint(
            "vScale (consumption-aware)",
            duration,
            wait,
            scenario.daemon.reconfigurations if scenario.daemon else 0,
        )
    )

    scenario = ScenarioBuilder(seed=seed).with_config(Config.VANILLA).build()
    dom0 = Dom0Toolstack(seeds.generator("dom0"), load=Dom0Load.IDLE)
    model = HotplugModel("v3.14.15", seeds.generator("hp"))
    manager = VCPUBalManager(scenario.worker_kernel, dom0, model)
    manager.install()
    scenario.start()
    scenario.run(WARMUP_NS)
    duration, wait = _run_app(scenario, app_name, seed, work_scale)
    points.append(
        AblationPoint("VCPU-Bal (weight-only, dom0)", duration, wait, manager.reconfigurations)
    )
    return points


def run_rounding_ablation(
    app_name: str = "ua", seed: int = 3, work_scale: float = 0.5
) -> list[AblationPoint]:
    """ceil vs. floor vs. conservative rounding of the vCPU target."""
    points = []
    for mode in ("ceil", "floor", "conservative"):
        builder = ScenarioBuilder(seed=seed).with_config(Config.VSCALE)
        builder.daemon_config = DaemonConfig(round_mode=mode)
        scenario = builder.build()
        scenario.start()
        scenario.run(WARMUP_NS)
        duration, wait = _run_app(scenario, app_name, seed, work_scale)
        points.append(
            AblationPoint(
                f"round={mode}",
                duration,
                wait,
                scenario.daemon.reconfigurations if scenario.daemon else 0,
            )
        )
    return points


def run_period_ablation(
    app_name: str = "cg",
    periods_ms: tuple[int, ...] = (10, 100, 1000),
    seed: int = 3,
    work_scale: float = 0.5,
) -> list[AblationPoint]:
    """Daemon polling period sensitivity."""
    points = []
    for period in periods_ms:
        builder = ScenarioBuilder(seed=seed).with_config(Config.VSCALE)
        builder.daemon_config = DaemonConfig(period_ns=period * MS)
        scenario = builder.build()
        scenario.start()
        scenario.run(WARMUP_NS)
        duration, wait = _run_app(scenario, app_name, seed, work_scale)
        points.append(
            AblationPoint(
                f"period={period}ms",
                duration,
                wait,
                scenario.daemon.reconfigurations if scenario.daemon else 0,
            )
        )
    return points
