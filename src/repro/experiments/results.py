"""Machine-readable persistence for experiment results.

The experiment result objects are dataclass-like aggregates with nested
collectors; this module flattens them into plain JSON-serializable
dictionaries (and back-compatible summaries) so runs can be archived,
diffed across code versions, and post-processed outside Python.

Used by ``repro.experiments.runner --out`` (which writes ``<name>.json``
next to the rendered text) and by tests that pin result schemas.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any

from repro.metrics.collectors import LatencyReservoir


def _encode(value: Any) -> Any:
    """Recursively convert experiment values into JSON-compatible data."""
    if isinstance(value, LatencyReservoir):
        if len(value) == 0:
            return {"count": 0}
        return {
            "count": len(value),
            "mean_ns": value.mean(),
            "min_ns": value.min(),
            "p50_ns": value.percentile(0.5),
            "p99_ns": value.percentile(0.99),
            "max_ns": value.max(),
        }
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: _encode(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    if isinstance(value, dict):
        return {_key(k): _encode(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_encode(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if hasattr(value, "value") and hasattr(type(value), "__members__"):
        return value.value  # Enum
    return repr(value)


def _key(key: Any) -> str:
    """JSON object keys must be strings; join tuple keys readably."""
    if isinstance(key, tuple):
        return "|".join(_key(part) for part in key)
    if hasattr(key, "value") and hasattr(type(key), "__members__"):
        return str(key.value)
    return str(key)


def to_dict(result: Any, experiment: str | None = None) -> dict:
    """Flatten a result object into a JSON-compatible dictionary."""
    payload = {"experiment": experiment} if experiment else {}
    if dataclasses.is_dataclass(result) and not isinstance(result, type):
        payload.update(_encode(result))
        return payload
    # Non-dataclass results: take their public attributes.
    for name in dir(result):
        if name.startswith("_"):
            continue
        value = getattr(result, name)
        if callable(value):
            continue
        payload[name] = _encode(value)
    return payload


def dumps(result: Any, experiment: str | None = None, indent: int = 2) -> str:
    """Serialize a result to a JSON string."""
    return json.dumps(to_dict(result, experiment), indent=indent, sort_keys=True)


def save(result: Any, path, experiment: str | None = None) -> None:
    """Write a result's JSON to ``path``."""
    from pathlib import Path

    Path(path).write_text(dumps(result, experiment) + "\n")
