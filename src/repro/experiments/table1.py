"""Table 1: the overhead of reading from the vScale channel.

The paper measures one million channel reads and reports the syscall and
hypercall components: 0.69 us and +0.22 us for a 0.91 us total.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.channel import VScaleChannel
from repro.guest.kernel import GuestKernel
from repro.hypervisor.config import HostConfig
from repro.hypervisor.machine import Machine
from repro.metrics.report import Table


@dataclass
class Table1Result:
    syscall_us: float
    hypercall_us: float
    total_us: float
    iterations: int

    def render(self) -> str:
        table = Table(
            "Table 1: overhead of reading from the vScale channel",
            ["operation", "overhead (us)"],
        )
        table.add_row("(1) System call (sys_getvscaleinfo)", f"= {self.syscall_us:.2f}")
        table.add_row(
            "(2) Hypercall (SCHEDOP_getvscaleinfo)",
            f"+{self.hypercall_us:.2f} = {self.total_us:.2f}",
        )
        return table.render()


def run(iterations: int = 1_000_000, seed: int = 1) -> Table1Result:
    """Micro-benchmark the channel read path."""
    machine = Machine(HostConfig(pcpus=2), seed=seed)
    domain = machine.create_domain("probe", vcpus=2)
    GuestKernel(domain)
    machine.install_vscale()
    channel = VScaleChannel(domain)
    components = channel.measure_components(iterations)
    return Table1Result(
        syscall_us=components["syscall_ns"] / 1000.0,
        hypercall_us=components["hypercall_ns"] / 1000.0,
        total_us=components["total_ns"] / 1000.0,
        iterations=iterations,
    )
