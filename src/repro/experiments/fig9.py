"""Figure 9: reduction of the VM's waiting time under vScale.

For every NPB application the paper compares the worker VM's cumulative
scheduling-queue waiting time between vanilla and vScale (with and
without pv-spinlock): vScale cuts it by over 90% across the board, because
the VM keeps only as many vCPUs as it can actually back with pCPUs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.npb_common import run_cell
from repro.experiments.setups import Config
from repro.metrics.report import Table
from repro.parallel import CellSpec, ParallelExecutor, get_default_executor
from repro.workloads.npb import NPB_PROFILES
from repro.workloads.openmp import SPINCOUNT_ACTIVE


@dataclass
class Fig9Result:
    #: app -> (vanilla wait, vscale wait) without pvlock, in ns.
    plain: dict[str, tuple[int, int]] = field(default_factory=dict)
    #: app -> (vanilla+pv wait, vscale+pv wait) in ns.
    pvlock: dict[str, tuple[int, int]] = field(default_factory=dict)

    def reduction(self, app: str, with_pvlock: bool = False) -> float:
        source = self.pvlock if with_pvlock else self.plain
        base, scaled = source[app]
        if base == 0:
            return 0.0
        return 1.0 - scaled / base

    def render(self) -> str:
        table = Table(
            "Figure 9: waiting-time reduction with vScale (%)",
            ["app", "w/o pvlock", "w/ pvlock"],
        )
        for app in self.plain:
            row = [app, f"{self.reduction(app) * 100:.1f}%"]
            if app in self.pvlock:
                row.append(f"{self.reduction(app, True) * 100:.1f}%")
            else:
                row.append("-")
            table.add_row(*row)
        return table.render()


def cells(
    apps: list[str] | None = None,
    vcpus: int = 4,
    spincount: int = SPINCOUNT_ACTIVE,
    include_pvlock: bool = True,
    seed: int = 3,
    work_scale: float = 1.0,
) -> list[CellSpec]:
    configs = [Config.VANILLA, Config.VSCALE]
    if include_pvlock:
        configs += [Config.PVLOCK, Config.VSCALE_PVLOCK]
    specs = []
    for app in apps or list(NPB_PROFILES):
        for config in configs:
            specs.append(
                CellSpec(
                    experiment="fig9",
                    name=f"{app}/{config.value}",
                    fn=run_cell,
                    kwargs=dict(
                        app_name=app,
                        vcpus=vcpus,
                        spincount=spincount,
                        config=config,
                        seed=seed,
                        work_scale=work_scale,
                    ),
                )
            )
    return specs


def run(
    apps: list[str] | None = None,
    vcpus: int = 4,
    spincount: int = SPINCOUNT_ACTIVE,
    include_pvlock: bool = True,
    seed: int = 3,
    work_scale: float = 1.0,
    executor: ParallelExecutor | None = None,
) -> Fig9Result:
    if executor is None:
        executor = get_default_executor()
    specs = cells(apps, vcpus, spincount, include_pvlock, seed, work_scale)
    by_config = {}
    for cell in executor.run_cells(specs):
        by_config[(cell.app, cell.config)] = cell
    result = Fig9Result()
    for app in apps or list(NPB_PROFILES):
        vanilla = by_config[(app, Config.VANILLA)]
        vscale = by_config[(app, Config.VSCALE)]
        result.plain[app] = (vanilla.wait_ns, vscale.wait_ns)
        if include_pvlock:
            vanilla_pv = by_config[(app, Config.PVLOCK)]
            vscale_pv = by_config[(app, Config.VSCALE_PVLOCK)]
            result.pvlock[app] = (vanilla_pv.wait_ns, vscale_pv.wait_ns)
    return result
