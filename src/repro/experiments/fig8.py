"""Figure 8: the active-vCPU trace while running ``bt`` under vScale.

The paper runs bt in a 4-vCPU VM and an 8-vCPU VM with vScale enabled and
plots the number of active vCPUs over ten seconds: the count oscillates as
the background desktops' consumption fluctuates, touching the provisioned
maximum when the pool has slack and dipping when the desktops burst.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.npb_common import run_cell
from repro.experiments.setups import Config


@dataclass
class Fig8Result:
    vcpus: int
    #: (time_ns, online_vcpus) change points.
    trace: list[tuple[int, int]]
    duration_ns: int

    def levels(self) -> set[int]:
        return {n for _, n in self.trace}

    def render(self) -> str:
        lines = [f"Figure 8: active vCPUs over time, bt in a {self.vcpus}-vCPU VM"]
        for t, n in self.trace:
            lines.append(f"  {t / 1e9:7.3f}s -> {n}")
        return "\n".join(lines)


def run(vcpus: int = 4, seed: int = 3, work_scale: float = 1.0) -> Fig8Result:
    from repro.core.daemon import DaemonConfig

    # Figure 8 plots Algorithm 1's n_i directly, so the daemon uses the
    # paper's ceil rounding here (the performance figures use the
    # conservative default; see DESIGN.md on the rounding deviation).
    cell = run_cell(
        "bt",
        vcpus,
        30_000_000_000,
        Config.VSCALE,
        seed=seed,
        work_scale=work_scale,
        daemon_config=DaemonConfig(round_mode="ceil"),
    )
    return Fig8Result(vcpus=vcpus, trace=cell.vcpu_trace, duration_ns=cell.duration_ns)
